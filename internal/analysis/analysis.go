// Package analysis is a small stdlib-only static-analysis framework plus
// the checkers that machine-enforce this repository's correctness
// disciplines: reproducible randomness (globalrand), order-stable float
// reductions (maporder, floateq), the zero-allocation hot-path contract
// established by the GEMM/conv work (hotalloc) and its transitive
// closure over the module call graph (hotcall), no blocking operations
// under a held mutex (lockheld), context propagation through the
// serving layers (ctxflow), no silently dropped errors (errdrop), and a
// doc comment on every package and every exported type, function, and
// method — interface implementations exempt (pkgdoc).
//
// The framework loads every package of the module with go/parser and
// type-checks it with go/types against compiled export data (see load.go),
// builds a module-wide call graph (callgraph.go: static calls,
// devirtualized methods, conservative in-module interface fan-out,
// package-level func-var resolution; see DESIGN.md §14 for the soundness
// caveats), then runs pluggable checkers over each package. Diagnostics
// are sorted by (file, line, col, checker, message) so output is
// byte-identical across runs. Findings can be waived in source with
//
//	//skynet:nolint checker1,checker2 -- reason
//
// on the offending line (or the line directly above it); the reason after
// the ` -- ` separator is mandatory, so every waiver documents itself.
// Functions annotated with a
//
//	//skynet:hotpath
//
// doc-comment line opt in to the hotalloc checker's allocation ban and
// serve as roots for the hotcall checker's reachability closure.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"sync"
)

// Diagnostic is one finding.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Checker string `json:"checker"`
	Message string `json:"message"`
}

// String renders the finding in the canonical `file:line: [checker]
// message` form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Checker, d.Message)
}

// Checker is one pluggable analysis.
type Checker struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All lists every registered checker in output order.
var All = []*Checker{GlobalRand, MapOrder, FloatEq, HotAlloc, HotCall, LockHeld, CtxFlow, ErrDrop, PkgDoc}

// ByName resolves a checker by its name.
func ByName(name string) *Checker {
	for _, c := range All {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Module is the shared whole-run state: every loaded package plus the
// lazily-built call graph and the analyses derived from it. Interprocedural
// checkers (hotcall, lockheld) reach it through Pass.Mod; the lazy build
// keeps single-checker runs that never ask for the graph free.
type Module struct {
	Pkgs []*Package

	graphOnce sync.Once
	graph     *CallGraph

	hotOnce sync.Once
	hotSet  map[string]*hotReach

	ifaceOnce sync.Once
	ifaces    []*types.Interface
}

// Graph returns the module-wide call graph, building it on first use.
func (m *Module) Graph() *CallGraph {
	m.graphOnce.Do(func() { m.graph = buildCallGraph(m.Pkgs) })
	return m.graph
}

// hotClosureOnce caches the hotpath transitive-closure analysis.
func (m *Module) hotClosureOnce() map[string]*hotReach {
	m.hotOnce.Do(func() { m.hotSet = hotClosure(m) })
	return m.hotSet
}

// interfaces returns every non-empty interface type declared at package
// scope anywhere in the module, building the list on first use. pkgdoc
// consults it for the interface-implementation documentation exemption.
func (m *Module) interfaces() []*types.Interface {
	m.ifaceOnce.Do(func() {
		for _, pkg := range m.Pkgs {
			if pkg.Types == nil {
				continue
			}
			scope := pkg.Types.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok {
					continue
				}
				if iface, ok := tn.Type().Underlying().(*types.Interface); ok && iface.NumMethods() > 0 {
					m.ifaces = append(m.ifaces, iface)
				}
			}
		}
	})
	return m.ifaces
}

// Pass is the per-(package, checker) context handed to Checker.Run.
type Pass struct {
	Pkg     *Package
	Mod     *Module
	checker *Checker
	sink    func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.sink(Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Checker: p.checker.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes the checkers over the packages, applies nolint waivers,
// and returns the surviving diagnostics in the canonical (file, line,
// col, checker, message) order. The sort lives here at the framework
// level — not per checker — so output is byte-identical across runs and
// GOMAXPROCS values even now that checkers share call-graph state.
// Malformed waiver comments (missing checker list or missing ` -- reason`)
// are themselves reported and cannot be waived.
func Run(pkgs []*Package, checkers []*Checker) []Diagnostic {
	mod := &Module{Pkgs: pkgs}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		waivers, malformed := collectWaivers(pkg)
		sink := func(d Diagnostic) {
			if !waivers.covers(d) {
				diags = append(diags, d)
			}
		}
		for _, c := range checkers {
			c.Run(&Pass{Pkg: pkg, Mod: mod, checker: c, sink: sink})
		}
		diags = append(diags, malformed...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		return a.Message < b.Message
	})
	return diags
}

// WriteText prints one diagnostic per line, with file paths relative to
// base when possible.
func WriteText(w io.Writer, base string, diags []Diagnostic) error {
	for _, d := range diags {
		d.File = relPath(base, d.File)
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON prints the diagnostics as a JSON array, with file paths
// relative to base when possible.
func WriteJSON(w io.Writer, base string, diags []Diagnostic) error {
	out := make([]Diagnostic, len(diags))
	for i, d := range diags {
		d.File = relPath(base, d.File)
		out[i] = d
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func relPath(base, file string) string {
	if base == "" {
		return file
	}
	if rel, err := filepath.Rel(base, file); err == nil && !filepath.IsAbs(rel) && rel != "" && !isParentPath(rel) {
		return rel
	}
	return file
}

func isParentPath(rel string) bool {
	return rel == ".." || len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator)
}

// isTestFile reports whether pos lies in a _test.go file. Several
// checkers exempt test code outright.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	name := fset.Position(pos).Filename
	return len(name) >= 8 && name[len(name)-8:] == "_test.go"
}

// inspect walks every file of a package with one callback.
func inspect(files []*ast.File, fn func(ast.Node) bool) {
	for _, f := range files {
		ast.Inspect(f, fn)
	}
}
