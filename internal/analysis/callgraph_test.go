package analysis

// Golden snapshot of the call graph over the fixture package: every edge,
// how it was resolved, and the deterministic order. Pinning the exact
// rendering catches both resolution regressions (a devirtualized call
// decaying to dynamic) and nondeterminism (map-order leaks into Keys or
// edge lists).

import (
	"fmt"
	"strings"
	"testing"
)

func TestCallGraphSnapshot(t *testing.T) {
	pkg, err := testLoader().LoadDir("testdata/src/callgraph")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	g := buildCallGraph([]*Package{pkg})

	var b strings.Builder
	for _, key := range g.Keys() {
		for _, e := range g.NodeByKey(key).Calls {
			callee := e.Callee
			if callee == "" {
				callee = "?"
			}
			fmt.Fprintf(&b, "%s -> %s [%s]\n", shortKey(key), shortKey(callee), e.Kind)
		}
	}

	want := `callgraph.Dynamic -> ? [dynamic]
callgraph.FuncVar -> callgraph.leaf [funcvar]
callgraph.Iface -> callgraph.bell.Ring [interface]
callgraph.Iface -> callgraph.horn.Ring [interface]
callgraph.Method -> callgraph.bell.Ring [static]
callgraph.Static -> callgraph.leaf [static]
`
	if got := b.String(); got != want {
		t.Errorf("call graph snapshot mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Every declared function has a node, leaves included.
	for _, fn := range []string{
		"testdata/callgraph.leaf",
		"testdata/callgraph.bell.Ring",
		"testdata/callgraph.horn.Ring",
	} {
		if g.NodeByKey(fn) == nil {
			t.Errorf("no node for %s", fn)
		}
	}
}

func TestCallGraphDeterministic(t *testing.T) {
	pkg, err := testLoader().LoadDir("testdata/src/callgraph")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	render := func(g *CallGraph) string {
		var b strings.Builder
		for _, key := range g.Keys() {
			fmt.Fprintf(&b, "%s:%d\n", key, len(g.NodeByKey(key).Calls))
		}
		return b.String()
	}
	first := render(buildCallGraph([]*Package{pkg}))
	for i := 0; i < 5; i++ {
		if got := render(buildCallGraph([]*Package{pkg})); got != first {
			t.Fatalf("rebuild %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}
