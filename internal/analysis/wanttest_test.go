package analysis

// The golden-file harness for checker testdata packages. Each package
// under testdata/src/<name> is parsed and type-checked for real, every
// checker runs over it, and the diagnostics are matched line-by-line
// against `// want `+"`regex`"+`` expectation comments in the source:
// an expectation with no matching diagnostic fails, and so does a
// diagnostic with no matching expectation. This proves each checker both
// fires on its failure modes and stays quiet on the sanctioned idioms.

import (
	"fmt"
	"regexp"
	"sync"
	"testing"
)

// wantRe extracts expectation regexes; the pattern may appear anywhere in
// a comment so malformed-waiver lines can carry expectations too.
var wantRe = regexp.MustCompile("want `([^`]+)`")

var (
	sharedLoaderOnce sync.Once
	sharedLoader     *Loader
)

// testLoader shares one loader (and its export-data cache) across tests.
func testLoader() *Loader {
	sharedLoaderOnce.Do(func() { sharedLoader = NewLoader("") })
	return sharedLoader
}

// runWantTest loads testdata/src/<name>, runs every checker, and matches
// findings against the want comments.
func runWantTest(t *testing.T, name string) {
	t.Helper()
	pkg, err := testLoader().LoadDir("testdata/src/" + name)
	if err != nil {
		t.Fatalf("loading testdata package %s: %v", name, err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Slash)
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}

	for _, d := range Run([]*Package{pkg}, All) {
		rendered := fmt.Sprintf("[%s] %s", d.Checker, d.Message)
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		matched := false
		for _, w := range wants[key] {
			if w.re.MatchString(rendered) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s:%d: %s", d.File, d.Line, rendered)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected a diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

func TestGlobalRandTestdata(t *testing.T) { runWantTest(t, "globalrand") }
func TestMapOrderTestdata(t *testing.T)   { runWantTest(t, "maporder") }
func TestFloatEqTestdata(t *testing.T)    { runWantTest(t, "floateq") }
func TestHotAllocTestdata(t *testing.T)   { runWantTest(t, "hotalloc") }
func TestHotCallTestdata(t *testing.T)    { runWantTest(t, "hotcall") }
func TestLockHeldTestdata(t *testing.T)   { runWantTest(t, "lockheld") }
func TestCtxFlowTestdata(t *testing.T)    { runWantTest(t, "ctxflow") }
func TestErrDropTestdata(t *testing.T)    { runWantTest(t, "errdrop") }
func TestNolintTestdata(t *testing.T)     { runWantTest(t, "nolint") }
func TestPkgDocTestdata(t *testing.T)     { runWantTest(t, "pkgdoc") }
