package analysis

// Native fuzz target for the waiver parser. The invariant under attack:
// for every input, parseNolint either returns a non-empty validated
// checker list with no problem, or a non-empty problem string — never
// both empty (a malformed waiver silently treated as valid would disable
// enforcement) and never a panic. The committed corpus under
// testdata/fuzz/FuzzParseNolint seeds the generator with the malformed
// shapes the parser must keep rejecting.

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func FuzzParseNolint(f *testing.F) {
	seeds := []string{
		" hotalloc -- reason",
		" hotalloc,lockheld -- multi reason",
		" all -- wildcard",
		"",
		" ",
		" -- reason with no checkers",
		" hotalloc",
		" hotalloc --",
		" hotalloc --   ",
		" nosuchchecker -- reason",
		" hotalloc, -- trailing comma",
		" ,,,, -- commas only",
		" hotalloc -- a -- b",
		" hotalloc\t--\treason",
		" hotalloc lockheld -- space separated",
		" --",
		"--reason",
		" all,all -- duplicate wildcard",
		" hotalloc -- \x00",
		" \xff\xfe -- non-utf8 checkers",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, rest string) {
		checkers, problem := parseNolint(rest)
		if problem != "" {
			if len(checkers) != 0 {
				t.Fatalf("parseNolint(%q) returned checkers %v alongside problem %q", rest, checkers, problem)
			}
			return
		}
		// Accepted: every name must be a registered checker or the
		// wildcard, and the reason tail must be genuinely non-empty.
		if len(checkers) == 0 {
			t.Fatalf("parseNolint(%q) accepted with no checkers and no problem", rest)
		}
		for _, name := range checkers {
			if name != "all" && ByName(name) == nil {
				t.Fatalf("parseNolint(%q) accepted unknown checker %q", rest, name)
			}
		}
		_, reason, found := strings.Cut(rest, "--")
		if !found || strings.TrimSpace(reason) == "" {
			t.Fatalf("parseNolint(%q) accepted a waiver without a reason", rest)
		}
		_ = utf8.ValidString(rest) // inputs need not be UTF-8; the parser must not care
	})
}
