package analysis

// floateq flags == and != between floating-point operands. After any
// arithmetic, exact float equality is a rounding-mode lottery — two
// mathematically equal reductions disagree in the last ulp and the branch
// flips between platforms or worker counts. Comparing against an exact
// zero literal is exempt: zero is preserved by IEEE 754 assignment and
// the sparsity-skip idiom (`if g == 0 { continue }`) is deliberate and
// well-defined. Any other exact comparison that is genuinely intended
// (golden-value checks, bitwise-determinism assertions) documents itself
// with a waiver.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags float equality comparisons.
var FloatEq = &Checker{
	Name: "floateq",
	Doc:  "== or != on floating-point operands; compare with a tolerance or document bitwise intent with a waiver",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	info := p.Pkg.Info
	inspect(p.Pkg.Files, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if !isFloat(info, be.X) || !isFloat(info, be.Y) {
			return true
		}
		if isZeroConst(info, be.X) || isZeroConst(info, be.Y) {
			return true
		}
		p.Reportf(be.OpPos, "%s on float operands is not portable after arithmetic; use a tolerance or waive with the bitwise rationale", be.Op)
		return true
	})
}

func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time constant equal to zero.
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0
}
