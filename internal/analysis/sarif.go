package analysis

// SARIF 2.1.0 output, the interchange format CI annotation systems (GitHub
// code scanning, Azure DevOps, VS Code SARIF viewers) ingest. Only the
// fields those consumers require are emitted: one run with a tool.driver
// carrying a rule per registered checker, and one result per diagnostic
// pointing at a physical location. Built on encoding/json alone.

import (
	"encoding/json"
	"io"
	"path/filepath"
)

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF prints the diagnostics as a SARIF 2.1.0 log with one run.
// File paths are made relative to base when possible and use forward
// slashes, as the artifactLocation.uri field requires. The rules table
// lists every registered checker — not just those that fired — so a
// consumer can display the full policy.
func WriteSARIF(w io.Writer, base string, diags []Diagnostic) error {
	rules := make([]sarifRule, len(All))
	for i, c := range All {
		rules[i] = sarifRule{ID: c.Name, ShortDescription: sarifMessage{Text: c.Doc}}
	}
	results := make([]sarifResult, len(diags))
	for i, d := range diags {
		results[i] = sarifResult{
			RuleID:  d.Checker,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(relPath(base, d.File))},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		}
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "skynet-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
