package analysis

// Waiver handling. A finding is suppressed by a comment of the form
//
//	//skynet:nolint checker1,checker2 -- reason
//
// either trailing the offending line or on the line directly above it.
// The checker list may be the wildcard `all`. The ` -- reason` tail is
// mandatory: a waiver that does not say why it exists is reported as a
// malformed-waiver diagnostic, which cannot itself be waived.

import (
	"go/token"
	"os"
	"strings"
)

const nolintPrefix = "skynet:nolint"

// waiverSet maps file -> line -> set of waived checker names ("all"
// waives everything on the line).
type waiverSet map[string]map[int]map[string]bool

func (w waiverSet) add(file string, line int, checkers []string) {
	byLine := w[file]
	if byLine == nil {
		byLine = map[int]map[string]bool{}
		w[file] = byLine
	}
	set := byLine[line]
	if set == nil {
		set = map[string]bool{}
		byLine[line] = set
	}
	for _, c := range checkers {
		set[c] = true
	}
}

func (w waiverSet) covers(d Diagnostic) bool {
	set := w[d.File][d.Line]
	return set["all"] || set[d.Checker]
}

// collectWaivers scans every comment of the package for nolint directives
// and returns the waiver set plus diagnostics for malformed directives.
func collectWaivers(pkg *Package) (waiverSet, []Diagnostic) {
	ws := waiverSet{}
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		var src []byte
		if name := pkg.Fset.Position(f.Pos()).Filename; name != "" {
			src, _ = os.ReadFile(name)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, nolintPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				checkers, problem := parseNolint(strings.TrimPrefix(text, nolintPrefix))
				if problem != "" {
					malformed = append(malformed, Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Checker: "nolint", Message: problem,
					})
					continue
				}
				// A trailing comment waives its own line; a comment alone on
				// its line waives the next line. Waiving both is harmless and
				// keeps the common "directive above a multi-clause statement"
				// case working.
				ws.add(pos.Filename, pos.Line, checkers)
				if src != nil && startsLine(pkg.Fset, src, c.Slash) {
					ws.add(pos.Filename, pos.Line+1, checkers)
				}
			}
		}
	}
	return ws, malformed
}

// parseNolint splits "` checker1,checker2 -- reason`" into the checker
// list, validating names and requiring a non-empty reason.
func parseNolint(rest string) (checkers []string, problem string) {
	body, reason, found := strings.Cut(rest, "--")
	if !found || strings.TrimSpace(reason) == "" {
		return nil, "malformed waiver: want //skynet:nolint <checkers> -- <reason>"
	}
	for _, name := range strings.FieldsFunc(body, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if name != "all" && ByName(name) == nil {
			return nil, "malformed waiver: unknown checker " + name
		}
		checkers = append(checkers, name)
	}
	if len(checkers) == 0 {
		return nil, "malformed waiver: no checkers named"
	}
	return checkers, ""
}

// startsLine reports whether the comment at pos stands alone on its line
// (only whitespace before it) rather than trailing code. src is the
// file's contents.
func startsLine(fset *token.FileSet, src []byte, pos token.Pos) bool {
	file := fset.File(pos)
	if file == nil {
		return false
	}
	start := file.Offset(file.LineStart(file.Line(pos)))
	for _, b := range src[start:file.Offset(pos)] {
		if b != ' ' && b != '\t' {
			return false
		}
	}
	return true
}
