package analysis

// ctxflow enforces context propagation in the request-path packages
// (internal/serve, internal/pipeline). A request's context carries its
// deadline and cancellation; a callee invoked with context.Background()
// instead of the caller's context silently detaches from both, which in a
// serving stack means work that outlives its client and deadlines that
// never fire. Two rules:
//
//  1. A function that receives a context.Context must forward it (or a
//     context derived from it — context.WithTimeout(ctx, …) and friends,
//     including through intermediate locals) to every callee that accepts
//     a context.
//  2. context.Background() and context.TODO() are banned outside main
//     packages and tests; a bootstrap site that genuinely wants a fresh
//     root context documents itself with a waiver.
//
// Derivation tracking is a small intra-function fixpoint: the parameter
// starts the derived set, and any variable assigned from an expression
// mentioning a derived variable joins it. Contexts stored in struct
// fields are not tracked (a field read is not considered derived), which
// deliberately flags request handlers that reach for a server-lifetime
// context where the request's own is in scope.

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxflowPackages are the import-path suffixes the checker applies to:
// the request-path packages plus the checker's own testdata fixture.
var ctxflowPackages = []string{
	"internal/serve",
	"internal/pipeline",
	"testdata/ctxflow",
}

// CtxFlow enforces context propagation in request-path packages.
var CtxFlow = &Checker{
	Name: "ctxflow",
	Doc:  "in request-path packages, a received context.Context must flow to every context-accepting callee; Background/TODO are banned outside main and tests",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	if !ctxflowApplies(p.Pkg) {
		return
	}
	info := p.Pkg.Info
	inspect(p.Pkg.Files, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil || isTestFile(p.Pkg.Fset, fd.Pos()) {
			return true
		}
		checkCtxRoots(p, fd)
		if param := ctxParam(info, fd); param != nil {
			checkCtxForwarding(p, fd, param)
		}
		return false
	})
}

func ctxflowApplies(pkg *Package) bool {
	for _, suffix := range ctxflowPackages {
		if strings.HasSuffix(pkg.Path, suffix) {
			return true
		}
	}
	return false
}

// checkCtxRoots flags context.Background() / context.TODO() calls. The
// request-path packages are never package main, so inside them every
// fresh root context needs a waiver naming why it must detach.
func checkCtxRoots(p *Pass, fd *ast.FuncDecl) {
	if p.Pkg.Files[0].Name.Name == "main" {
		return
	}
	info := p.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(info, call.Fun)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if name := fn.Name(); name == "Background" || name == "TODO" {
			p.Reportf(call.Pos(), "context.%s() in request-path function %s detaches from the caller's deadline and cancellation; thread a context or waive the bootstrap site",
				name, fd.Name.Name)
		}
		return true
	})
}

// ctxParam returns the function's first context.Context parameter, nil if
// it has none.
func ctxParam(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok && isContextType(v.Type()) {
				return v
			}
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	return namedTypeName(t) == "context.Context"
}

// checkCtxForwarding demands that every call to a context-accepting
// callee inside fd receives a context derived from fd's own parameter.
func checkCtxForwarding(p *Pass, fd *ast.FuncDecl, param *types.Var) {
	info := p.Pkg.Info
	derived := derivedCtxObjects(info, fd, param)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		i, callee := ctxArgIndex(info, call)
		if i < 0 || i >= len(call.Args) {
			return true
		}
		if mentionsAny(info, call.Args[i], derived) {
			return true
		}
		// An argument built on context.Background()/TODO() is rule 2's
		// problem; rule 2 flags the root construction once rather than
		// re-flagging every site the detached context flows into.
		if mentionsCtxRoot(info, call.Args[i]) {
			return true
		}
		p.Reportf(call.Args[i].Pos(), "%s receives ctx but passes a different context to %s; forward ctx (or a context derived from it)",
			fd.Name.Name, callee)
		return true
	})
}

// derivedCtxObjects computes the set of variables holding a context
// derived from param: the param itself, plus (to a fixpoint) every
// variable assigned from an expression that mentions a derived variable.
func derivedCtxObjects(info *types.Info, fd *ast.FuncDecl, param *types.Var) map[types.Object]bool {
	derived := map[types.Object]bool{param: true}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// Both v := expr and v = expr; for tuple assignments every LHS
			// context-typed variable fed by a derived RHS joins the set.
			rhsDerived := false
			for _, rhs := range as.Rhs {
				// Background()/TODO() count as derivation sources so the
				// contexts built from them are charged once, at the root
				// construction (rule 2), not at every downstream use.
				if mentionsAny(info, rhs, derived) || mentionsCtxRoot(info, rhs) {
					rhsDerived = true
					break
				}
			}
			if !rhsDerived {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if v, ok := obj.(*types.Var); ok && isContextType(v.Type()) && !derived[v] {
					derived[v] = true
					changed = true
				}
			}
			return true
		})
	}
	return derived
}

// mentionsCtxRoot reports whether expr contains a call to
// context.Background() or context.TODO().
func mentionsCtxRoot(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := staticCallee(info, call.Fun); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
			if name := fn.Name(); name == "Background" || name == "TODO" {
				found = true
			}
		}
		return true
	})
	return found
}

// mentionsAny reports whether expr references any object in set.
func mentionsAny(info *types.Info, expr ast.Expr, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && set[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// ctxArgIndex returns the argument position of the callee's first
// context.Context parameter and the callee's name, or (-1, "") when the
// callee is unknown or takes no context. Interface-method callees count:
// the signature is what matters, not the implementation.
func ctxArgIndex(info *types.Info, call *ast.CallExpr) (int, string) {
	var fn *types.Func
	if f := staticCallee(info, call.Fun); f != nil {
		fn = f
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			fn, _ = s.Obj().(*types.Func)
		}
	}
	if fn == nil {
		return -1, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1, ""
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return i, fn.Name()
		}
	}
	return -1, ""
}
