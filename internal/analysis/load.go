package analysis

// This file loads and type-checks the packages a lint run inspects. It
// stays on the standard library by letting the go tool do the heavy
// lifting: `go list -export` compiles each dependency and reports the
// path of its export data, and go/importer's gc importer reads that data
// through a lookup function. Only the packages actually being linted are
// parsed from source; everything they import — stdlib included — comes
// from compiled export data, which is both fast and immune to cgo and
// build-constraint headaches a source importer would hit.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for checking.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module.
type Loader struct {
	// Dir is the directory the go tool runs in (any directory inside the
	// module). Empty means the current directory.
	Dir string

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// NewLoader returns a loader rooted at dir (empty for the current
// directory).
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:     dir,
		fset:    token.NewFileSet(),
		exports: map[string]string{},
	}
}

// Fset exposes the loader's file set (shared by all loaded packages).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// goList runs `go list -export -json` over the patterns and decodes the
// package stream.
func (l *Loader) goList(extraFlags []string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-json"}, extraFlags...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// lookupExport resolves an import path to an open export-data file,
// shelling out for paths (typically stdlib) not seen in the initial list.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		pkgs, err := l.goList(nil, path)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
		}
		file = l.exports[path]
	}
	if file == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

func (l *Loader) importerInstance() types.Importer {
	if l.imp == nil {
		l.imp = importer.ForCompiler(l.fset, "gc", l.lookupExport)
	}
	return l.imp
}

// Load lists the packages matching the patterns, records export data for
// them and their dependencies, and parses + type-checks every matched
// non-standard package from source. Test files are not loaded: the
// checkers govern library code, and several of them explicitly exempt
// tests.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := l.goList([]string{"-deps"}, patterns...)
	if err != nil {
		return nil, err
	}
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := l.check(t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks every .go file directly inside dir as a
// single package. It is the entry point for checker testdata packages,
// which live under testdata/ precisely so the go tool ignores them.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)
	return l.check("testdata/"+filepath.Base(dir), dir, files)
}

// check parses the files and type-checks them as one package.
func (l *Loader) check(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.importerInstance()}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}
