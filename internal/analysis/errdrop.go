package analysis

// errdrop flags expression-statement calls whose returned error vanishes.
// A dropped error in the serving or training stack turns a failed encode,
// a short write, or a closed connection into silent data corruption; the
// call must either handle the error, assign it explicitly (`_ = f()`
// reads as a decision), or carry a waiver naming why the error is
// unactionable.
//
// Exemptions: test files; the fmt.Print/Printf/Println stdout trio
// (terminal write failures are conventionally unactionable), and their
// fmt.Fprint* forms when the destination is os.Stdout/os.Stderr for the
// same reason; fmt.Fprint* into a *strings.Builder or *bytes.Buffer
// (which never return a non-nil error) or a *bufio.Writer (whose error is
// sticky and surfaces at the Flush call sites do check); and methods
// called directly on *bytes.Buffer and *strings.Builder.

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags discarded error results.
var ErrDrop = &Checker{
	Name: "errdrop",
	Doc:  "expression statement discards a returned error outside tests",
	Run:  runErrDrop,
}

func runErrDrop(p *Pass) {
	info := p.Pkg.Info
	inspect(p.Pkg.Files, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(es.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		if isTestFile(p.Pkg.Fset, call.Pos()) {
			return true
		}
		if !returnsError(info, call) || errDropExempt(info, call) {
			return true
		}
		p.Reportf(call.Pos(), "call discards its error result; handle it, assign to _, or waive with the reason it is unactionable")
		return true
	})
}

// returnsError reports whether the call's result (or last result of a
// tuple) has type error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface)
}

func errDropExempt(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	// fmt.Print / fmt.Printf / fmt.Println to stdout.
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && exemptWriter(info, call.Args[0])
		}
	}
	// Methods documented to always return a nil error.
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		switch namedTypeName(recv.Type()) {
		case "bytes.Buffer", "strings.Builder":
			return true
		}
	}
	return false
}

// exemptWriter reports whether a fmt.Fprint* destination is one whose
// write errors are unactionable (stdout/stderr) or deferred to an
// explicit check elsewhere (in-memory builders; bufio's sticky error).
func exemptWriter(info *types.Info, w ast.Expr) bool {
	if sel, ok := ast.Unparen(w).(*ast.SelectorExpr); ok {
		if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.Pkg() != nil &&
			v.Pkg().Path() == "os" && (v.Name() == "Stdout" || v.Name() == "Stderr") {
			return true
		}
	}
	switch namedTypeName(info.TypeOf(w)) {
	case "bytes.Buffer", "strings.Builder", "bufio.Writer":
		return true
	}
	return false
}

// namedTypeName returns "pkgpath.Name" of t after stripping one pointer
// level, or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Path() + "." + named.Obj().Name()
	}
	return ""
}
