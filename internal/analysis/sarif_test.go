package analysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteSARIF decodes the emitted log and checks the fields SARIF
// consumers rely on: schema/version, the rules table, and result
// locations with relativized forward-slash URIs.
func TestWriteSARIF(t *testing.T) {
	diags := []Diagnostic{
		{File: "/repo/internal/nn/conv.go", Line: 42, Col: 7, Checker: "hotcall", Message: "m1"},
		{File: "/elsewhere/b.go", Line: 7, Col: 1, Checker: "lockheld", Message: "m2"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "/repo", diags); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("decoding SARIF: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version/schema = %q / %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "skynet-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(All) {
		t.Errorf("rules = %d, want one per registered checker (%d)", len(run.Tool.Driver.Rules), len(All))
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, c := range All {
		if !ruleIDs[c.Name] {
			t.Errorf("rules table missing checker %q", c.Name)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	r0 := run.Results[0]
	if r0.RuleID != "hotcall" || r0.Level != "warning" || r0.Message.Text != "m1" {
		t.Errorf("result[0] = %+v", r0)
	}
	loc := r0.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/nn/conv.go" {
		t.Errorf("in-base URI = %q, want relativized", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 || loc.Region.StartColumn != 7 {
		t.Errorf("region = %+v", loc.Region)
	}
	if uri := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "/elsewhere/b.go" {
		t.Errorf("out-of-base URI = %q, want untouched", uri)
	}
}

// TestWriteSARIFEmpty checks the empty log is still a valid run with the
// rules table present and an empty (not null) results array.
func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "", nil); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"results": []`) {
		t.Errorf("empty log must carry an empty results array:\n%s", out)
	}
}
