package analysis

// Diagnostic output must be byte-identical from run to run and across
// parallelism settings — CI diffs lint output between branches, and a
// map-order or scheduling leak would turn every diff into noise. The
// fixture packages fire all three interprocedural checkers, so this
// exercises the call-graph build, the closure walk, and the final
// framework sort.

import (
	"bytes"
	"runtime"
	"testing"
)

func lintFixturesText(t *testing.T) string {
	t.Helper()
	var pkgs []*Package
	for _, dir := range []string{
		"testdata/src/hotcall",
		"testdata/src/lockheld",
		"testdata/src/ctxflow",
		"testdata/src/callgraph",
	} {
		pkg, err := testLoader().LoadDir(dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags := Run(pkgs, All)
	if len(diags) == 0 {
		t.Fatal("fixture packages produced no diagnostics; stability test is vacuous")
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, "", diags); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return buf.String()
}

func TestDiagnosticStability(t *testing.T) {
	first := lintFixturesText(t)
	for i := 0; i < 3; i++ {
		if got := lintFixturesText(t); got != first {
			t.Fatalf("run %d output differs:\n%s\nvs first run:\n%s", i+2, got, first)
		}
	}
}

func TestDiagnosticStabilityAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	serial := lintFixturesText(t)
	runtime.GOMAXPROCS(8)
	parallel := lintFixturesText(t)
	runtime.GOMAXPROCS(prev)
	if serial != parallel {
		t.Fatalf("output differs between GOMAXPROCS=1 and GOMAXPROCS=8:\n%s\nvs\n%s", serial, parallel)
	}
}
