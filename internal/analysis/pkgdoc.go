package analysis

// pkgdoc requires every package to carry a package doc comment on at
// least one of its files. The doc comment is the contract statement of a
// package — what it models from the paper, which invariants it enforces —
// and a package without one forces readers to reverse-engineer intent
// from code. The finding anchors at the package clause of the package's
// first file (in load order, which is sorted by filename), the
// conventional home for the doc.

import "go/ast"

// PkgDoc flags packages with no package-level doc comment on any file.
var PkgDoc = &Checker{
	Name: "pkgdoc",
	Doc:  "package has no package doc comment on any of its files",
	Run:  runPkgDoc,
}

func runPkgDoc(p *Pass) {
	if len(p.Pkg.Files) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		if docText(f) != "" {
			return
		}
	}
	first := p.Pkg.Files[0]
	p.Reportf(first.Package, "package %s has no package doc comment on any file; add one above a package clause",
		first.Name.Name)
}

// docText returns the file's package doc comment text, "" if absent or
// effectively empty.
func docText(f *ast.File) string {
	if f.Doc == nil {
		return ""
	}
	return f.Doc.Text()
}
