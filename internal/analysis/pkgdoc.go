package analysis

// pkgdoc enforces the documentation contract at two levels. Every package
// must carry a package doc comment on at least one of its files: the doc
// comment is the contract statement of a package — what it models from the
// paper, which invariants it enforces — and a package without one forces
// readers to reverse-engineer intent from code. And every exported type,
// function, and method must carry its own doc comment: an exported name is
// API, and an undocumented one exports a guess.
//
// One class of method is exempt: a method that implements an interface
// defined in this module. Its contract lives on the interface declaration
// (nn.Layer's 50-odd Forward/Backward implementations would otherwise each
// restate the interface doc), so requiring a comment there would breed the
// noise comments this repo's style forbids. Methods on unexported types
// are likewise skipped — they are not API, even when the method name is
// exported to satisfy an interface.

import (
	"go/ast"
	"go/types"
)

// PkgDoc flags packages with no package doc comment and exported
// declarations with no doc comment.
var PkgDoc = &Checker{
	Name: "pkgdoc",
	Doc:  "package, exported type, or exported function has no doc comment",
	Run:  runPkgDoc,
}

func runPkgDoc(p *Pass) {
	if len(p.Pkg.Files) == 0 {
		return
	}
	hasPkgDoc := false
	for _, f := range p.Pkg.Files {
		if docText(f) != "" {
			hasPkgDoc = true
			break
		}
	}
	if !hasPkgDoc {
		first := p.Pkg.Files[0]
		p.Reportf(first.Package, "package %s has no package doc comment on any file; add one above a package clause",
			first.Name.Name)
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(p, d)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					if d.Doc.Text() == "" && ts.Doc.Text() == "" {
						p.Reportf(ts.Pos(), "exported type %s has no doc comment", ts.Name.Name)
					}
				}
			}
		}
	}
}

// checkFuncDoc flags undocumented exported functions and methods, applying
// the interface-implementation exemption for methods.
func checkFuncDoc(p *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() || d.Doc.Text() != "" {
		return
	}
	if d.Recv == nil {
		p.Reportf(d.Pos(), "exported function %s has no doc comment", d.Name.Name)
		return
	}
	recv := receiverName(d)
	if recv == "" || !ast.IsExported(recv) {
		return
	}
	if implementsModuleInterface(p, d) {
		return
	}
	p.Reportf(d.Pos(), "exported method %s.%s has no doc comment", recv, d.Name.Name)
}

// receiverName extracts the receiver's base type name ("" when the
// receiver is not a plain (possibly pointered, possibly generic) named
// type).
func receiverName(d *ast.FuncDecl) string {
	if len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.Name
	}
	return ""
}

// implementsModuleInterface reports whether the method satisfies a method
// of the same name on some interface declared in this module — in which
// case the contract is documented on the interface, not on every
// implementation.
func implementsModuleInterface(p *Pass, d *ast.FuncDecl) bool {
	if p.Pkg.Info == nil {
		return false
	}
	fn, ok := p.Pkg.Info.Defs[d.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	for _, iface := range p.Mod.interfaces() {
		if !ifaceHasMethod(iface, d.Name.Name) {
			continue
		}
		if types.Implements(recv, iface) {
			return true
		}
		if _, isPtr := recv.(*types.Pointer); !isPtr && types.Implements(types.NewPointer(recv), iface) {
			return true
		}
	}
	return false
}

// ifaceHasMethod reports whether the interface's full method set includes
// a method with the given name.
func ifaceHasMethod(iface *types.Interface, name string) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == name {
			return true
		}
	}
	return false
}

// docText returns the file's package doc comment text, "" if absent or
// effectively empty.
func docText(f *ast.File) string {
	if f.Doc == nil {
		return ""
	}
	return f.Doc.Text()
}
