package analysis

// Module-wide call graph + dataflow layer. The per-package checkers of
// PR 4 are intraprocedural: hotalloc only sees a function's own body, so
// an allocation two calls below a //skynet:hotpath root escapes the ban,
// and nothing can reason about what a callee does while the caller holds
// a lock. This file closes that gap with a call graph over every package
// of a lint run, resolved against go/types:
//
//   - static calls (`f(x)`, `pkg.F(x)`) become EdgeStatic edges;
//   - method calls devirtualize to EdgeStatic when the receiver's
//     concrete type is known to the type checker;
//   - interface method calls fan out conservatively (EdgeInterface) to
//     every in-module concrete type the type checker proves implements
//     the interface — a superset of the dynamic callees;
//   - calls through package-level function variables (the tensor
//     micro-kernel dispatch seam) resolve by dataflow (EdgeFuncVar) to
//     every function the module ever assigns to that variable;
//   - all other indirect calls (parameters, fields, locals of function
//     type) become an unresolved edge (EdgeDynamic, empty callee) so a
//     checker can at least see that *something* unknown is called.
//
// Soundness caveats (documented in DESIGN.md §14): interface fan-out only
// sees in-module implementations, function-variable dataflow only sees
// direct `v = f` assignments (a value that flows through a local or a
// return escapes it), and unresolved dynamic edges carry no callee. The
// graph is therefore a sound overapproximation for static and devirtual
// call structure and a best-effort one for indirect calls; checkers that
// consume it say which edge kinds they trust.
//
// Nodes are keyed by a stable "pkgpath.Recv.Name" string rather than by
// *types.Func identity: a package loaded from source and the same package
// seen through export data by an importer produce distinct Func objects,
// and the string key unifies them.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// EdgeKind classifies how a call edge was resolved.
type EdgeKind int

const (
	// EdgeStatic is a direct call to a known function or a method call
	// devirtualized through a concrete receiver type.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is a conservative fan-out edge from an interface
	// method call to one in-module type implementing the interface.
	EdgeInterface
	// EdgeFuncVar is a dataflow edge from a call through a package-level
	// function variable to one function assigned to that variable.
	EdgeFuncVar
	// EdgeDynamic is an unresolved indirect call (function value from a
	// parameter, field or local); Callee is empty.
	EdgeDynamic
)

// String names the edge kind for graph snapshots and diagnostics.
func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeInterface:
		return "interface"
	case EdgeFuncVar:
		return "funcvar"
	case EdgeDynamic:
		return "dynamic"
	}
	return "?"
}

// CallEdge is one outgoing call from a node.
type CallEdge struct {
	Callee string // node key; "" for EdgeDynamic
	Kind   EdgeKind
	Pos    token.Pos
	Go     bool // the call is the operand of a go statement
}

// blockInfo records why a function is considered blocking.
type blockInfo struct {
	pos  token.Pos
	what string // e.g. "channel receive", "sync.WaitGroup.Wait"
}

// Node is one function in the call graph.
type Node struct {
	Key   string
	Fn    *types.Func   // the defining object (in-module nodes only)
	Decl  *ast.FuncDecl // nil for body-less (assembly) declarations
	Pkg   *Package
	Hot   bool // carries the //skynet:hotpath directive
	Calls []CallEdge

	// directBlock is the first lexically-blocking operation in the body
	// (channel op, defaultless select, sync.WaitGroup.Wait, sync.Cond.Wait,
	// HTTP response write), if any. Goroutine and closure bodies are
	// excluded: their blocking happens on another stack.
	directBlock *blockInfo
}

// CallGraph is the module-wide graph. Only functions declared in the
// loaded packages have nodes; edges may name out-of-module callees by key
// but those keys resolve to nil nodes.
type CallGraph struct {
	nodes map[string]*Node
	keys  []string // sorted node keys, the deterministic iteration order
}

// NodeByKey returns the node for key, nil if the function is not declared
// in the loaded packages.
func (g *CallGraph) NodeByKey(key string) *Node { return g.nodes[key] }

// Keys returns the sorted node keys.
func (g *CallGraph) Keys() []string { return g.keys }

// FuncKey builds the stable node key for a function object:
// "pkgpath.Name" for package functions, "pkgpath.Recv.Name" for methods
// (pointer receivers are stripped; generic instantiations collapse to
// their origin).
func FuncKey(fn *types.Func) string {
	fn = fn.Origin()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkg + "." + fn.Name()
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return pkg + "." + t.Obj().Name() + "." + fn.Name()
	case *types.Interface:
		return pkg + ".<interface>." + fn.Name()
	}
	return pkg + "." + t.String() + "." + fn.Name()
}

// shortKey trims the module path prefix off a node key for human-facing
// call chains: "skynet/internal/nn.Conv2D.Forward" → "nn.Conv2D.Forward".
func shortKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// buildCallGraph constructs the graph over the packages. Iteration is in
// package order (Load returns them sorted), file order, then syntactic
// order, so the graph — and everything derived from it — is deterministic.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: map[string]*Node{}}

	// Pass 1: nodes for every declared function, and the in-module named
	// types (for interface fan-out).
	type namedType struct {
		name  string
		typ   types.Type
		pkg   *Package
	}
	var named []namedType
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch decl := decl.(type) {
				case *ast.FuncDecl:
					fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
					if !ok {
						continue
					}
					key := FuncKey(fn)
					node := &Node{Key: key, Fn: fn, Pkg: pkg, Hot: isHotpath(decl)}
					if decl.Body != nil {
						node.Decl = decl
					}
					g.nodes[key] = node
				case *ast.GenDecl:
					if decl.Tok != token.TYPE {
						continue
					}
					for _, spec := range decl.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
						if !ok || obj.IsAlias() {
							continue
						}
						named = append(named, namedType{name: obj.Name(), typ: obj.Type(), pkg: pkg})
					}
				}
			}
		}
	}

	// funcVarTargets: package-level function-variable object -> the
	// functions the module assigns to it, discovered by scanning every
	// `var v = f` spec and `v = f` assignment whose RHS names a function
	// directly. This is the dataflow that resolves the tensor kernel
	// dispatch seam (gemmMicro/i8Micro).
	funcVarTargets := map[*types.Var][]string{}
	recordTarget := func(pkg *Package, lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := pkg.Info.Defs[id].(*types.Var)
		if !ok {
			if v, ok = pkg.Info.Uses[id].(*types.Var); !ok {
				return
			}
		}
		if v.Parent() != v.Pkg().Scope() { // package-level variables only
			return
		}
		if fn := staticCallee(pkg.Info, rhs); fn != nil {
			funcVarTargets[v] = append(funcVarTargets[v], FuncKey(fn))
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ValueSpec:
					for i, name := range n.Names {
						if i < len(n.Values) {
							recordTarget(pkg, name, n.Values[i])
						}
					}
				case *ast.AssignStmt:
					if len(n.Lhs) == len(n.Rhs) {
						for i := range n.Lhs {
							recordTarget(pkg, n.Lhs[i], n.Rhs[i])
						}
					}
				}
				return true
			})
		}
	}

	// implementers resolves an interface method to every in-module
	// concrete method that can stand behind it, caching per (interface,
	// method) pair.
	implCache := map[*types.Func][]string{}
	implementers := func(iface *types.Interface, m *types.Func) []string {
		if keys, ok := implCache[m]; ok {
			return keys
		}
		var keys []string
		for _, nt := range named {
			if types.IsInterface(nt.typ) {
				continue
			}
			recv := types.NewPointer(nt.typ)
			if !types.Implements(recv, iface) && !types.Implements(nt.typ, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
			if fn, ok := obj.(*types.Func); ok {
				keys = append(keys, FuncKey(fn))
			}
		}
		implCache[m] = keys
		return keys
	}

	// Pass 2: edges and blocking summaries.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := g.nodes[FuncKey(fn)]
				if node == nil {
					continue
				}
				addEdges(g, node, pkg, fd.Body, funcVarTargets, implementers)
				node.directBlock = firstBlockingOp(pkg, fd.Body)
			}
		}
	}

	g.keys = make([]string, 0, len(g.nodes))
	for k := range g.nodes {
		g.keys = append(g.keys, k)
	}
	sort.Strings(g.keys)
	return g
}

// addEdges walks body and appends one CallEdge per call expression to
// node.Calls. Function-literal bodies are attributed to the enclosing
// declaration: a closure's calls do execute on the enclosing path (or a
// path it spawns), and hotalloc separately bans the closure header itself
// on hot paths.
func addEdges(g *CallGraph, node *Node, pkg *Package, body ast.Node,
	funcVarTargets map[*types.Var][]string,
	implementers func(*types.Interface, *types.Func) []string) {

	info := pkg.Info
	var walk func(n ast.Node, inGo bool)
	walk = func(n ast.Node, inGo bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				walk(gs.Call, true)
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Conversions and builtins are not calls.
			if _, isConv := info.Types[call.Fun]; isConv && info.Types[call.Fun].IsType() {
				return true
			}
			if builtinName(info, call) != "" {
				return true
			}
			edgeFor(g, node, pkg, call, inGo, funcVarTargets, implementers)
			return true
		})
	}
	walk(body, false)
}

// edgeFor resolves one call expression into edges on node.
func edgeFor(g *CallGraph, node *Node, pkg *Package, call *ast.CallExpr, inGo bool,
	funcVarTargets map[*types.Var][]string,
	implementers func(*types.Interface, *types.Func) []string) {

	info := pkg.Info
	fun := ast.Unparen(call.Fun)

	// Interface method call?
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			if iface, ok := s.Recv().Underlying().(*types.Interface); ok {
				m := s.Obj().(*types.Func)
				for _, callee := range implementers(iface, m) {
					node.Calls = append(node.Calls, CallEdge{Callee: callee, Kind: EdgeInterface, Pos: call.Pos(), Go: inGo})
				}
				if len(implementers(iface, m)) == 0 {
					// No in-module implementation: keep the interface call
					// visible as an unresolved edge.
					node.Calls = append(node.Calls, CallEdge{Kind: EdgeDynamic, Pos: call.Pos(), Go: inGo})
				}
				return
			}
		}
	}

	// Static call (package function, or method devirtualized through its
	// concrete receiver)?
	if fn := staticCallee(info, fun); fn != nil {
		node.Calls = append(node.Calls, CallEdge{Callee: FuncKey(fn), Kind: EdgeStatic, Pos: call.Pos(), Go: inGo})
		return
	}

	// Call through a package-level function variable with known targets?
	if id, ok := fun.(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			if targets := funcVarTargets[v]; len(targets) > 0 {
				seen := map[string]bool{}
				for _, t := range targets {
					if !seen[t] {
						seen[t] = true
						node.Calls = append(node.Calls, CallEdge{Callee: t, Kind: EdgeFuncVar, Pos: call.Pos(), Go: inGo})
					}
				}
				return
			}
		}
	}

	// Anything else (parameter, field, local closure, method value):
	// unresolved.
	node.Calls = append(node.Calls, CallEdge{Kind: EdgeDynamic, Pos: call.Pos(), Go: inGo})
}

// staticCallee resolves expr to the function object it directly names:
// an identifier or selector whose use is a *types.Func (plain function,
// package-qualified function, or method with a concrete receiver). It
// returns nil for interface method selections so the caller can fan those
// out instead.
func staticCallee(info *types.Info, expr ast.Expr) *types.Func {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if s := info.Selections[e]; s != nil {
			if s.Kind() != types.MethodVal {
				return nil
			}
			if _, ok := s.Recv().Underlying().(*types.Interface); ok {
				return nil
			}
			if fn, ok := s.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
