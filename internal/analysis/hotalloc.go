package analysis

// hotalloc enforces the zero-allocation contract on functions annotated
//
//	//skynet:hotpath
//
// in their doc comment: the GEMM micro/macro-kernels and packing
// routines, the steady-state convolution forward kernels, and the
// pipeline executor's per-item stage loop. PR 1 established (and tests
// with testing.AllocsPerRun) that these paths allocate nothing once warm;
// this checker catches the regression at review time instead of waiting
// for an alloc-count test to trip.
//
// Inside an annotated function the checker flags the constructs that heap-
// allocate on every execution: make, new, append, function literals
// (closure headers escape), map and slice composite literals, and
// address-taken composite literals (`&T{...}`). A plain struct or array
// composite *value* (e.g. a token sent by value over a channel, a
// fixed-size accumulator tile) stays on the stack and is allowed.

import (
	"go/ast"
	"go/types"
)

const hotpathDirective = "//skynet:hotpath"

// HotAlloc flags allocations inside //skynet:hotpath functions.
var HotAlloc = &Checker{
	Name: "hotalloc",
	Doc:  "allocation (make/new/append/closure/escaping composite literal) inside a //skynet:hotpath function",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !isHotpath(fd) {
				continue
			}
			if fd.Body == nil {
				// Assembly-backed declaration (the GEMM micro-kernels in
				// internal/tensor). The annotation is documentation here —
				// hand-written assembly cannot touch the Go heap — and the
				// contract is enforced on these paths by the package's
				// AllocsPerRun tests, so there is nothing to inspect.
				continue
			}
			checkHotBody(p, fd)
		}
	}
}

// isHotpath reports whether the function's doc comment carries the
// //skynet:hotpath directive.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathDirective {
			return true
		}
	}
	return false
}

func checkHotBody(p *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	reportHotAllocs(p, fd, func(n ast.Node, what string) {
		p.Reportf(n.Pos(), "%s in hotpath function %s", what, name)
	})
}

// reportHotAllocs walks fd's body and invokes report for every construct
// that heap-allocates on each execution, phrased as "<construct>
// allocates"/"escapes". Shared by hotalloc (annotated functions) and
// hotcall (functions reached transitively from annotated roots).
func reportHotAllocs(p *Pass, fd *ast.FuncDecl, report func(n ast.Node, what string)) {
	info := p.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n, "closure literal allocates")
			return false // inner allocations belong to the closure finding
		case *ast.CallExpr:
			if b := builtinName(info, n); b == "make" || b == "new" || b == "append" {
				report(n, b+" allocates")
			}
		case *ast.UnaryExpr:
			if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && n.Op.String() == "&" {
				report(cl, "address-taken composite literal escapes")
				return false
			}
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				report(n, "slice literal allocates")
			case *types.Map:
				report(n, "map literal allocates")
			}
		}
		return true
	})
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
