package analysis

// hotcall closes the //skynet:hotpath contract over the call graph.
// hotalloc (PR 4) bans allocations inside annotated functions, but only
// inside them: an im2col helper, a requantize epilogue, or an xcorr pack
// routine called from a hot function escaped the ban entirely because
// nobody had annotated it. hotcall computes the transitive closure of
// every annotated root over the call graph (static, devirtualized-method,
// and function-variable edges — interface fan-out edges too, since a
// conservative superset of callees can only over-enforce a *ban*) and,
// for every reachable in-module function that is not itself annotated:
//
//   - demands the //skynet:hotpath annotation (so hotalloc and the human
//     reader both see the contract), reporting the call chain that makes
//     the function hot (`root → f → g`);
//   - applies the hotalloc allocation ban to its body, again with the
//     chain in the diagnostic.
//
// Reachable functions that *are* annotated are hotalloc's responsibility;
// hotcall deliberately does not double-report them. Unresolved dynamic
// edges (function values from parameters or fields) are not followed — a
// documented soundness gap (DESIGN.md §14); the pipeline's per-stage Proc
// values, for example, are user code by design and not part of the kernel
// contract.

import (
	"go/ast"
	"sort"
	"strings"
)

// HotCall enforces the hotpath allocation ban transitively.
var HotCall = &Checker{
	Name: "hotcall",
	Doc:  "function reachable from a //skynet:hotpath root must be annotated and allocation-free; diagnostics carry the call chain",
	Run:  runHotCall,
}

// hotReach records how one unannotated function was reached.
type hotReach struct {
	node  *Node
	chain string // "root → f → g", shortened keys
}

// hotClosure walks the hotpath closure once per module and caches the
// unannotated-but-reachable set on the Module.
func hotClosure(m *Module) map[string]*hotReach {
	g := m.Graph()
	reached := map[string]*hotReach{}
	// parent chains: BFS from every root, in sorted key order so the
	// first chain found for a shared callee is deterministic.
	visited := map[string]bool{}
	type qitem struct {
		key   string
		chain []string
	}
	var queue []qitem
	for _, key := range g.Keys() {
		if g.NodeByKey(key).Hot {
			visited[key] = true
			queue = append(queue, qitem{key: key, chain: []string{shortKey(key)}})
		}
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		node := g.NodeByKey(it.key)
		if node == nil {
			continue
		}
		// Deduplicate multi-edges deterministically before following.
		var callees []string
		seen := map[string]bool{}
		for _, e := range node.Calls {
			if e.Callee == "" || e.Kind == EdgeDynamic {
				continue
			}
			if !seen[e.Callee] {
				seen[e.Callee] = true
				callees = append(callees, e.Callee)
			}
		}
		sort.Strings(callees)
		for _, callee := range callees {
			if visited[callee] {
				continue
			}
			visited[callee] = true
			cn := g.NodeByKey(callee)
			if cn == nil { // out-of-module: the ban cannot see its body
				continue
			}
			chain := append(append([]string{}, it.chain...), shortKey(callee))
			if !cn.Hot && cn.Decl != nil {
				reached[callee] = &hotReach{node: cn, chain: strings.Join(chain, " → ")}
			}
			// Annotated callees restart their own closure (they are roots
			// themselves); either way keep walking.
			queue = append(queue, qitem{key: callee, chain: chain})
		}
	}
	return reached
}

func runHotCall(p *Pass) {
	reached := p.Mod.hotClosureOnce()
	// Report only the functions declared in this pass's package, in
	// deterministic order (framework sorting handles final order anyway).
	for _, r := range reached {
		if r.node.Pkg != p.Pkg {
			continue
		}
		fd := r.node.Decl
		p.Reportf(fd.Name.Pos(), "%s is reachable from a hotpath root (%s) but lacks //skynet:hotpath; annotate it or waive with a reason",
			fd.Name.Name, r.chain)
		chain := r.chain
		reportHotAllocs(p, fd, func(pos ast.Node, what string) {
			p.Reportf(pos.Pos(), "%s in %s, which is on a hot call chain (%s)", what, fd.Name.Name, chain)
		})
	}
}
