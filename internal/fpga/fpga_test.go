package fpga

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"skynet/internal/backbone"
	"skynet/internal/tensor"
)

func TestDSPPerMultFigure2c(t *testing.T) {
	// Figure 2(c): with 16-bit FMs, W15 needs twice the DSPs of W14.
	if DSPPerMult(15, 16) != 2*DSPPerMult(14, 16) {
		t.Fatalf("W15/FM16 = %v, W14/FM16 = %v: the Figure 2(c) halving is missing",
			DSPPerMult(15, 16), DSPPerMult(14, 16))
	}
	// INT8 packing halves DSP cost again.
	if DSPPerMult(8, 8) != 0.5 {
		t.Fatalf("W8/FM8 = %v, want 0.5", DSPPerMult(8, 8))
	}
	// The paper's chosen scheme 1 (W11/FM9) costs one DSP per multiplier.
	if DSPPerMult(11, 9) != 1 {
		t.Fatalf("W11/FM9 = %v, want 1", DSPPerMult(11, 9))
	}
	// Float32 is the most expensive.
	if DSPPerMult(0, 0) <= DSPPerMult(15, 16) {
		t.Fatal("float32 must cost more DSPs than any fixed-point scheme")
	}
}

// Property: DSP cost is monotone non-decreasing in each operand width.
func TestQuickDSPMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 4 + rng.Intn(12)
		fm := 4 + rng.Intn(12)
		return DSPPerMult(w+1, fm) >= DSPPerMult(w, fm) &&
			DSPPerMult(w, fm+1) >= DSPPerMult(w, fm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBRAMBlocksKnownShapes(t *testing.T) {
	// 512×36 fits exactly one block.
	if got := BRAMBlocks(512, 36); got != 1 {
		t.Fatalf("512x36 = %d blocks, want 1", got)
	}
	// 1024×18 also fits one block via the 1K×18 aspect.
	if got := BRAMBlocks(1024, 18); got != 1 {
		t.Fatalf("1024x18 = %d blocks, want 1", got)
	}
	// 1025×18 spills into a second block.
	if got := BRAMBlocks(1025, 18); got != 2 {
		t.Fatalf("1025x18 = %d blocks, want 2", got)
	}
	if BRAMBlocks(0, 18) != 0 {
		t.Fatal("zero depth must cost nothing")
	}
}

// Property: BRAM usage is monotone in depth and width.
func TestQuickBRAMMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(20000)
		w := 1 + rng.Intn(36)
		return BRAMBlocks(d+512, w) >= BRAMBlocks(d, w) &&
			BRAMBlocks(d, w+1) >= BRAMBlocks(d, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAutoConfigFitsDevice(t *testing.T) {
	for _, dev := range []Device{Ultra96, PynqZ1} {
		for _, bits := range [][2]int{{11, 9}, {8, 8}, {15, 16}, {10, 8}} {
			cfg := AutoConfig(dev, bits[0], bits[1])
			if cfg.DSPCost() > dev.DSP {
				t.Fatalf("%s W%d/FM%d: AutoConfig uses %d DSPs of %d",
					dev.Name, bits[0], bits[1], cfg.DSPCost(), dev.DSP)
			}
			if cfg.Lanes() < 16 {
				t.Fatalf("%s: implausibly small array %d lanes", dev.Name, cfg.Lanes())
			}
		}
	}
}

func TestAutoConfigLanesScaleWithPacking(t *testing.T) {
	wide := AutoConfig(Ultra96, 15, 16) // 2 DSP/mult
	narrow := AutoConfig(Ultra96, 8, 8) // 0.5 DSP/mult
	if narrow.Lanes() <= wide.Lanes() {
		t.Fatal("cheaper multipliers must allow a larger array")
	}
}

func TestEstimateSkyNetUltra96(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := backbone.SkyNetC(rng, backbone.DefaultConfig())
	x := tensor.New(1, 3, 160, 320)
	x.RandUniform(rng, 0, 1)
	g.Forward(x, false)
	ip := AutoConfig(Ultra96, 11, 9) // the paper's scheme 1
	rep := Estimate(g, Ultra96, ip)
	if !rep.Fits {
		t.Fatalf("SkyNet must fit Ultra96: %s", rep)
	}
	// The paper's full system runs at 25.05 FPS with inference as the
	// pipeline bottleneck; the raw accelerator estimate must land in a
	// plausible band around that (20–80 FPS).
	if rep.FPS < 20 || rep.FPS > 80 {
		t.Fatalf("SkyNet Ultra96 estimate %.1f FPS outside the plausible band: %s", rep.FPS, rep)
	}
	if rep.GOPS > 144 {
		t.Fatalf("achieved GOPS %.1f exceeds the device peak", rep.GOPS)
	}
}

func TestEstimateMonotoneInParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := backbone.SkyNetC(rng, backbone.Config{Width: 0.25, InC: 3, HeadChannels: 10, ReLU6: true})
	x := tensor.New(1, 3, 48, 96)
	x.RandUniform(rng, 0, 1)
	g.Forward(x, false)
	small := Estimate(g, Ultra96, IPConfig{Tm: 4, Tn: 4, WBits: 11, FMBits: 9})
	large := Estimate(g, Ultra96, IPConfig{Tm: 16, Tn: 16, WBits: 11, FMBits: 9})
	if large.LatencyS >= small.LatencyS {
		t.Fatalf("larger array must be faster: %v vs %v", large.LatencyS, small.LatencyS)
	}
	if large.DSPUsed <= small.DSPUsed {
		t.Fatal("larger array must use more DSPs")
	}
}

func TestEstimateBatchImprovesWeightTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := backbone.SkyNetC(rng, backbone.Config{Width: 0.25, InC: 3, HeadChannels: 10, ReLU6: true})
	// Small input so all layer boundaries stay on-chip even at batch 4;
	// the remaining traffic is the weight stream, which batching divides.
	x := tensor.New(1, 3, 24, 24)
	x.RandUniform(rng, 0, 1)
	g.Forward(x, false)
	b1 := Estimate(g, Ultra96, IPConfig{Tm: 8, Tn: 8, WBits: 11, FMBits: 9, Batch: 1})
	b4 := Estimate(g, Ultra96, IPConfig{Tm: 8, Tn: 8, WBits: 11, FMBits: 9, Batch: 4})
	if b4.MemoryS >= b1.MemoryS {
		t.Fatalf("batching must reduce per-image weight traffic: %v vs %v", b4.MemoryS, b1.MemoryS)
	}
}

func TestFMBufferBlocksQuantized(t *testing.T) {
	// Crossing a power-of-two depth boundary produces a step.
	small := FMBufferBlocks(16*1024, 9, 16)
	big := FMBufferBlocks(16*1024+16*100, 9, 16)
	if big < small {
		t.Fatal("buffer cost must not shrink with more words")
	}
}

// TestFig2bShape: shrinking the input resize factor eventually halves the
// FM buffer BRAM, the Figure 2(b) observation.
func TestFig2bShape(t *testing.T) {
	const c, h, w = 96, 40, 80 // widest SkyNet FM plane at full input
	cost := func(factor float64, bits int) int {
		words := int64(float64(c) * float64(h) * factor * float64(w) * factor)
		return FMBufferBlocks(words, bits, 16) * 2
	}
	full := cost(1.0, 14)
	// The paper reduces the factor from 1.00 to 0.78 and observes half the
	// memory once the factor drops below 0.9.
	reduced := cost(0.78, 14)
	if reduced > full/2 {
		t.Fatalf("resize 0.78 uses %d blocks vs %d at 1.00; expected ≈ halving", reduced, full)
	}
	// More FM bits must never need fewer blocks.
	if cost(1.0, 16) < cost(1.0, 12) {
		t.Fatal("BRAM must be monotone in FM bits")
	}
}

func TestEvaluateTilingFigure9(t *testing.T) {
	reports := EvaluateTiling(96*40*80, 9, 16)
	if len(reports) != 3 {
		t.Fatalf("want 3 schemes, got %d", len(reports))
	}
	b1, b4, tiled := reports[0], reports[1], reports[2]
	// Batching improves weight reuse 4×.
	if b4.WeightLoadsPerImage != 0.25 || tiled.WeightLoadsPerImage != 0.25 ||
		b1.WeightLoadsPerImage != 1 {
		t.Fatal("weight reuse accounting wrong")
	}
	// Tiling must never use more BRAM than four separate buffers.
	if tiled.BRAMBlocks > b4.BRAMBlocks {
		t.Fatalf("tiled buffer (%d) must be ≤ separate buffers (%d)",
			tiled.BRAMBlocks, b4.BRAMBlocks)
	}
	// And the tiled scheme should waste no more buffer space.
	if tiled.BufferWasteFrac > b4.BufferWasteFrac+1e-9 {
		t.Fatalf("tiled waste %.3f exceeds separate-buffer waste %.3f",
			tiled.BufferWasteFrac, b4.BufferWasteFrac)
	}
}

func TestDeviceString(t *testing.T) {
	if Ultra96.String() == "" || PynqZ1.String() == "" {
		t.Fatal("device descriptions must be non-empty")
	}
}

// Out-of-range scheme values must render a placeholder, not panic — the
// String method sits on formatted-output paths.
func TestTilingSchemeStringOutOfRange(t *testing.T) {
	if got := SchemeTiled2x2.String(); got != "batch=4 tiled 2x2" {
		t.Fatalf("in-range name = %q", got)
	}
	for _, s := range []TilingScheme{-1, 3, 99} {
		got := s.String()
		if got == "" {
			t.Fatalf("scheme %d rendered empty", int(s))
		}
		if got != fmt.Sprintf("scheme(%d)", int(s)) {
			t.Fatalf("scheme %d rendered %q, want placeholder", int(s), got)
		}
	}
}

func TestReportPowerCalibration(t *testing.T) {
	// At the SkyNet operating point (≈90% DSP, moderate BRAM) the model
	// must land near the published 7.26 W.
	r := Report{UtilDSP: 0.9, UtilBRAM: 0.6}
	if p := r.PowerW(); p < 6.5 || p > 8.0 {
		t.Fatalf("power %v W outside the calibrated band", p)
	}
	// Monotone in utilization.
	lo := Report{UtilDSP: 0.1, UtilBRAM: 0.1}
	if lo.PowerW() >= r.PowerW() {
		t.Fatal("power must grow with utilization")
	}
}

func TestTilingHalvesSeparateBufferCost(t *testing.T) {
	// With strip buffers, the 2×2 stitch needs half the BRAM of four
	// separate buffers (one dimension doubles instead of four instances).
	reports := EvaluateTiling(61440, 9, 16)
	b4, tiled := reports[1], reports[2]
	if tiled.BRAMBlocks*2 != b4.BRAMBlocks {
		t.Fatalf("tiled %d vs separate %d blocks; expected exact halving",
			tiled.BRAMBlocks, b4.BRAMBlocks)
	}
}

func TestEstimateQuantizationSpeedsUp(t *testing.T) {
	// Narrower operands pack more multipliers into the DSP budget, so an
	// auto-sized 8-bit IP must beat an auto-sized 16-bit one.
	rng := rand.New(rand.NewSource(9))
	g := backbone.SkyNetC(rng, backbone.Config{Width: 0.25, InC: 3, HeadChannels: 10, ReLU6: true})
	x := tensor.New(1, 3, 48, 96)
	x.RandUniform(rng, 0, 1)
	g.Forward(x, false)
	w8 := Estimate(g, Ultra96, AutoConfig(Ultra96, 8, 8))
	w16 := Estimate(g, Ultra96, AutoConfig(Ultra96, 15, 16))
	if w8.LatencyS >= w16.LatencyS {
		t.Fatalf("8-bit design (%.2fms) must beat 16-bit (%.2fms)",
			w8.LatencyS*1e3, w16.LatencyS*1e3)
	}
}

// TestOperatingPointCouplesAccuracy checks that a measured IoU rides along
// with the latency/resource estimate and shows up in the summary.
func TestOperatingPointCouplesAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := backbone.SkyNetC(rng, backbone.Config{Width: 0.25, InC: 3, HeadChannels: 10, ReLU6: true})
	x := tensor.New(1, 3, 32, 64)
	x.RandUniform(rng, 0, 1)
	g.Forward(x, false)
	rep := Estimate(g, Ultra96, AutoConfig(Ultra96, 8, 8))
	p := rep.WithAccuracy(0.512)
	if p.IoU != 0.512 || p.FPS != rep.FPS {
		t.Fatalf("operating point %+v lost fields of %+v", p, rep)
	}
	s := p.String()
	if !strings.Contains(s, "IoU 0.512") || !strings.Contains(s, "W8/FM8") {
		t.Fatalf("operating point summary %q missing accuracy or scheme", s)
	}
}
