package fpga

import (
	"fmt"
	"strings"

	"skynet/internal/nn"
)

// This file is a tile-level simulator of the shared-IP accelerator: it
// schedules every convolution onto the Tm×Tn multiplier array tile by tile
// (output-channel × input-channel × spatial), streams weights through a
// double-buffered DMA channel that overlaps compute, and accounts cycles
// per layer. Where Estimate is the calibrated analytical model (its
// Inefficiency factor absorbs everything the paper's real system lost),
// Simulate derives the schedule organically and therefore bounds the
// achievable ideal: pipeline-fill overheads, tile-quantization waste and
// the depth-wise diagonal mapping all emerge from the schedule itself.

// LayerTrace is the simulated execution record of one layer.
type LayerTrace struct {
	Index int
	Name  string
	Kind  LayerKind
	// Tile structure.
	TmTiles, TnTiles int
	SpatialPositions int64
	KernelTaps       int64 // K² (1 for point-wise)
	// Cycle accounting.
	ComputeCycles int64
	WeightCycles  int64 // weight-stream DMA demand
	FMCycles      int64 // off-chip feature-map traffic (when spilled)
	FillCycles    int64 // pipeline fill per tile pass
	StallCycles   int64 // DMA demand not hidden behind compute
	StartCycle    int64
	EndCycle      int64
	// Utilization is the fraction of array multipliers doing useful MACs
	// while the layer computes.
	Utilization float64
}

// Cycles returns the layer's simulated wall cycles.
func (t LayerTrace) Cycles() int64 { return t.EndCycle - t.StartCycle }

// SimReport is the outcome of one simulated inference.
type SimReport struct {
	Device      Device
	IP          IPConfig
	Traces      []LayerTrace
	TotalCycles int64
	LatencyS    float64
	FPS         float64
	// AvgUtilization is MAC-weighted array utilization.
	AvgUtilization float64
	// TotalMACs actually executed.
	TotalMACs int64
}

// fill cycles for one pass of the array pipeline (load/drain).
const tileFillCycles = 32

// Simulate runs the tile-level schedule for a graph whose Forward has been
// executed (shapes recorded) on the device with the given IP.
func Simulate(g *nn.Graph, dev Device, ip IPConfig) SimReport {
	ip.normalize()
	works := ExtractWork(g, ip)
	if len(works) == 0 {
		panic("fpga: Simulate needs a graph with convolutional layers (run Forward first)")
	}
	// Bits the DDR channel can deliver per accelerator cycle.
	bitsPerCycle := dev.DDRBandwidth * 8 / (dev.FreqMHz * 1e6)
	// On-chip FM capacity, mirroring Estimate's budget split.
	var maxWBits int64
	for _, w := range works {
		if w.WeightBits > maxWBits {
			maxWBits = w.WeightBits
		}
	}
	wBlocks := BRAMBlocks(int(maxWBits/int64(max(1, ip.WBits))), ip.WBits) * 2
	fmBudgetBlocks := dev.BRAM18K*6/10 - wBlocks
	if fmBudgetBlocks < 2*ip.Tn {
		fmBudgetBlocks = 2 * ip.Tn
	}
	onChipWords := int64(fmBudgetBlocks/2) * 18 * 1024 / int64(ip.FMBits)

	rep := SimReport{Device: dev, IP: ip}
	var cycle int64
	var weightedUtil float64
	prevWords := works[0].FMWords
	for idx, w := range works {
		tr := LayerTrace{Index: idx, StartCycle: cycle, Kind: w.Kind}
		switch w.Kind {
		case KindDW:
			tr.Name = fmt.Sprintf("dwconv[%d]", idx)
			tr.TmTiles = ceilDiv(w.OutC, ip.Tm)
			tr.TnTiles = 1
			// MACs = C × K² × P; channels map across Tm, so one tile pass
			// covers min(Tm, C) channels at one MAC each per tap.
			chPerTile := min64(int64(ip.Tm), int64(w.OutC))
			tr.KernelTaps = w.MACs / (int64(w.OutC))
			tr.SpatialPositions = tr.KernelTaps // P×K² combined; keep product
			tr.ComputeCycles = int64(tr.TmTiles) * tr.KernelTaps
			util := float64(chPerTile) / float64(ip.Lanes())
			tr.Utilization = util
		default:
			tr.Name = fmt.Sprintf("conv[%d]", idx)
			tr.TmTiles = ceilDiv(w.OutC, ip.Tm)
			tr.TnTiles = ceilDiv(w.InC, ip.Tn)
			perPos := w.MACs / int64(w.InC) / int64(w.OutC) // P × K²
			tr.KernelTaps = perPos
			tr.SpatialPositions = perPos
			tr.ComputeCycles = int64(tr.TmTiles) * int64(tr.TnTiles) * perPos
			// Utilization: edge tiles run partially empty.
			ideal := float64(w.MACs) / float64(ip.Lanes())
			tr.Utilization = ideal / float64(tr.ComputeCycles)
		}
		tr.FillCycles = int64(tr.TmTiles*tr.TnTiles) * tileFillCycles
		tr.WeightCycles = int64(float64(w.WeightBits) / bitsPerCycle / float64(ip.Batch))
		// FM spill: the layer boundary streams through DDR when it cannot
		// stay resident (same rule as Estimate).
		if (prevWords+w.FMWords)*int64(ip.Batch) > onChipWords {
			tr.FMCycles = int64(float64(2*w.FMWords*int64(ip.FMBits)) / bitsPerCycle)
		}
		prevWords = w.FMWords

		// Double buffering hides DMA behind compute; the excess stalls.
		dma := tr.WeightCycles + tr.FMCycles
		busy := tr.ComputeCycles + tr.FillCycles
		if dma > busy {
			tr.StallCycles = dma - busy
		}
		cycle += busy + tr.StallCycles
		tr.EndCycle = cycle
		weightedUtil += tr.Utilization * float64(w.MACs)
		rep.TotalMACs += w.MACs
		rep.Traces = append(rep.Traces, tr)
	}
	rep.TotalCycles = cycle
	rep.LatencyS = float64(cycle) / (dev.FreqMHz * 1e6)
	rep.FPS = 1 / rep.LatencyS
	if rep.TotalMACs > 0 {
		rep.AvgUtilization = weightedUtil / float64(rep.TotalMACs)
	}
	return rep
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Timeline renders a per-layer cycle breakdown table.
func (r SimReport) Timeline() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %10s %10s %10s %8s %8s %6s\n",
		"layer", "compute", "weights", "fmspill", "fill", "stall", "util")
	for _, t := range r.Traces {
		fmt.Fprintf(&sb, "%-12s %10d %10d %10d %8d %8d %5.0f%%\n",
			t.Name, t.ComputeCycles, t.WeightCycles, t.FMCycles,
			t.FillCycles, t.StallCycles, t.Utilization*100)
	}
	fmt.Fprintf(&sb, "total %d cycles = %.2f ms (%.1f FPS), avg utilization %.0f%%\n",
		r.TotalCycles, r.LatencyS*1e3, r.FPS, r.AvgUtilization*100)
	return sb.String()
}
