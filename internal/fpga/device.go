// Package fpga models the paper's FPGA deployment path (§6.4): an IP-based
// accelerator in which one configurable Bundle IP is shared by every SkyNet
// layer, sized as large as the device's DSP budget allows (the Hao et al.,
// 2019 mapping strategy). The model covers DSP cost as a function of
// weight/feature-map bit widths (the packing behaviour behind Figure 2(c)),
// BRAM banking with the power-of-two depth granularity behind Figure 2(b),
// end-to-end latency/resource estimation, and the batch + tiling buffer
// scheme of Figure 9.
package fpga

import (
	"fmt"
	"math"
)

// Device describes an FPGA part's resource budget.
type Device struct {
	Name    string
	DSP     int // DSP48-class slices
	BRAM18K int // 18 Kb block-RAM primitives
	LUTk    int // thousands of LUTs
	FreqMHz float64
	// DDRBandwidth is the off-chip memory bandwidth in bytes/s.
	DDRBandwidth float64
}

// The contest devices. Ultra96 carries a Zynq UltraScale+ ZU3EG
// (360 DSP48E2, 216 BRAM36 = 432 BRAM18K); Pynq-Z1 a Zynq-7020
// (220 DSP48E1, 280 BRAM18K).
var (
	Ultra96 = Device{Name: "Ultra96", DSP: 360, BRAM18K: 432, LUTk: 71,
		FreqMHz: 200, DDRBandwidth: 4.3e9}
	PynqZ1 = Device{Name: "Pynq-Z1", DSP: 220, BRAM18K: 280, LUTk: 53,
		FreqMHz: 142, DDRBandwidth: 2.1e9}
)

// DSPPerMult returns the DSP slices consumed by one W×FM multiplier at the
// given bit widths. The table captures DSP48 behaviour as the paper
// observes it in Figure 2(c): once the combined operand width exceeds the
// slice's native multiplier, a second cascaded slice is needed (so FM16
// weights going from W15 to W14 halves the DSP count), while ≤8-bit
// operands allow two multipliers to share one slice (double-pumping /
// INT8 packing, the optimization several contest entries used).
func DSPPerMult(wBits, fmBits int) float64 {
	switch {
	case wBits <= 0 || fmBits <= 0: // float32 → handled as 32-bit
		return 4
	case wBits+fmBits >= 31:
		return 2
	case wBits <= 8 && fmBits <= 8:
		return 0.5
	default:
		return 1
	}
}

// bramShapes are the width×depth aspect configurations of one 18 Kb block.
var bramShapes = []struct{ depth, width int }{
	{512, 36}, {1024, 18}, {2048, 9}, {4096, 4}, {8192, 2}, {16384, 1},
}

// BRAMBlocks returns the number of 18 Kb BRAM primitives needed for one
// memory of `depth` words × `widthBits`, choosing the cheapest legal
// aspect configuration. Depth is consumed in native-granularity chunks, so
// usage moves in steps — the mechanism behind Figure 2(b)'s plateaus.
func BRAMBlocks(depth, widthBits int) int {
	if depth <= 0 || widthBits <= 0 {
		return 0
	}
	best := math.MaxInt32
	for _, s := range bramShapes {
		blocks := ceilDiv(depth, s.depth) * ceilDiv(widthBits, s.width)
		if blocks < best {
			best = blocks
		}
	}
	return best
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// String implements fmt.Stringer.
func (d Device) String() string {
	return fmt.Sprintf("%s (%d DSP, %d BRAM18K, %dk LUT @%.0fMHz)",
		d.Name, d.DSP, d.BRAM18K, d.LUTk, d.FreqMHz)
}
