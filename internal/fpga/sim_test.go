package fpga

import (
	"math/rand"
	"strings"
	"testing"

	"skynet/internal/backbone"
	"skynet/internal/tensor"
)

func simSkyNet(t *testing.T, width float64, h, w int) (SimReport, Report) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	g := backbone.SkyNetC(rng, backbone.Config{Width: width, InC: 3, HeadChannels: 10, ReLU6: true})
	x := tensor.New(1, 3, h, w)
	x.RandUniform(rng, 0, 1)
	g.Forward(x, false)
	ip := AutoConfig(Ultra96, 11, 9)
	return Simulate(g, Ultra96, ip), Estimate(g, Ultra96, ip)
}

func TestSimulateSkyNetFullSize(t *testing.T) {
	sim, est := simSkyNet(t, 1, 160, 320)
	if sim.TotalCycles <= 0 || sim.LatencyS <= 0 {
		t.Fatal("empty simulation")
	}
	// 13 convolutional layers of SkyNet C.
	if len(sim.Traces) != 13 {
		t.Fatalf("traces %d, want 13", len(sim.Traces))
	}
	// The ideal tile schedule must be faster than (or equal to) the
	// calibrated analytical estimate, but within the same order.
	if sim.LatencyS > est.LatencyS {
		t.Fatalf("simulated %.2fms exceeds calibrated estimate %.2fms",
			sim.LatencyS*1e3, est.LatencyS*1e3)
	}
	if sim.LatencyS < est.LatencyS/5 {
		t.Fatalf("simulated %.2fms implausibly far below estimate %.2fms",
			sim.LatencyS*1e3, est.LatencyS*1e3)
	}
	// Cycle accounting must be self-consistent.
	var prevEnd int64
	for _, tr := range sim.Traces {
		if tr.StartCycle != prevEnd {
			t.Fatalf("layer %d starts at %d, previous ended at %d", tr.Index, tr.StartCycle, prevEnd)
		}
		if tr.Cycles() != tr.ComputeCycles+tr.FillCycles+tr.StallCycles {
			t.Fatalf("layer %d cycle identity violated", tr.Index)
		}
		prevEnd = tr.EndCycle
	}
	if prevEnd != sim.TotalCycles {
		t.Fatal("total cycles must equal the last layer's end")
	}
}

func TestSimulateUtilizationProperties(t *testing.T) {
	sim, _ := simSkyNet(t, 1, 160, 320)
	var dwUtil, pwUtil float64
	var dwN, pwN int
	for _, tr := range sim.Traces {
		if tr.Utilization <= 0 || tr.Utilization > 1+1e-9 {
			t.Fatalf("layer %d utilization %v out of (0,1]", tr.Index, tr.Utilization)
		}
		if tr.Kind == KindDW {
			dwUtil += tr.Utilization
			dwN++
		} else {
			pwUtil += tr.Utilization
			pwN++
		}
	}
	// The diagonal mapping makes depth-wise layers far less efficient than
	// point-wise ones — the structural reason a DW+PW Bundle must keep DW
	// layers cheap.
	if dwUtil/float64(dwN) >= pwUtil/float64(pwN) {
		t.Fatalf("DW utilization %.3f should be below PW %.3f",
			dwUtil/float64(dwN), pwUtil/float64(pwN))
	}
	if sim.AvgUtilization <= 0 || sim.AvgUtilization > 1 {
		t.Fatalf("avg utilization %v", sim.AvgUtilization)
	}
}

func TestSimulateMACConservation(t *testing.T) {
	// The simulator must execute exactly the network's MACs.
	rng := rand.New(rand.NewSource(2))
	g := backbone.SkyNetC(rng, backbone.Config{Width: 0.25, InC: 3, HeadChannels: 10, ReLU6: true})
	x := tensor.New(1, 3, 48, 96)
	x.RandUniform(rng, 0, 1)
	g.Forward(x, false)
	macs, _ := g.Cost()
	sim := Simulate(g, Ultra96, AutoConfig(Ultra96, 11, 9))
	if sim.TotalMACs != macs {
		t.Fatalf("simulated %d MACs, graph has %d", sim.TotalMACs, macs)
	}
}

func TestSimulateLargerArrayIsFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := backbone.SkyNetC(rng, backbone.Config{Width: 0.25, InC: 3, HeadChannels: 10, ReLU6: true})
	x := tensor.New(1, 3, 48, 96)
	x.RandUniform(rng, 0, 1)
	g.Forward(x, false)
	small := Simulate(g, Ultra96, IPConfig{Tm: 4, Tn: 4, WBits: 11, FMBits: 9})
	large := Simulate(g, Ultra96, IPConfig{Tm: 16, Tn: 16, WBits: 11, FMBits: 9})
	if large.TotalCycles >= small.TotalCycles {
		t.Fatalf("16x16 (%d cycles) must beat 4x4 (%d)", large.TotalCycles, small.TotalCycles)
	}
}

func TestSimulateBatchReducesWeightStalls(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := backbone.SkyNetC(rng, backbone.Config{Width: 0.25, InC: 3, HeadChannels: 10, ReLU6: true})
	x := tensor.New(1, 3, 24, 24)
	x.RandUniform(rng, 0, 1)
	g.Forward(x, false)
	stalls := func(batch int) int64 {
		sim := Simulate(g, Ultra96, IPConfig{Tm: 18, Tn: 18, WBits: 11, FMBits: 9, Batch: batch})
		var s int64
		for _, tr := range sim.Traces {
			s += tr.StallCycles
		}
		return s
	}
	if stalls(4) > stalls(1) {
		t.Fatal("batching must not increase weight-stream stalls")
	}
}

func TestSimulateTimelineRenders(t *testing.T) {
	sim, _ := simSkyNet(t, 0.25, 48, 96)
	out := sim.Timeline()
	if !strings.Contains(out, "dwconv[0]") || !strings.Contains(out, "total") {
		t.Fatalf("timeline missing content:\n%s", out)
	}
}
