package fpga_test

import (
	"fmt"

	"skynet/internal/fpga"
)

func ExampleDSPPerMult() {
	// The Figure 2(c) cliff: at 16-bit feature maps, going from 15-bit to
	// 14-bit weights halves the DSP cost per multiplier.
	fmt.Println(fpga.DSPPerMult(15, 16), fpga.DSPPerMult(14, 16))
	// Output: 2 1
}

func ExampleAutoConfig() {
	// Size the shared Bundle IP "as large as possible" for the paper's
	// chosen quantization (scheme 1: 11-bit weights, 9-bit feature maps).
	ip := fpga.AutoConfig(fpga.Ultra96, 11, 9)
	fmt.Printf("%dx%d = %d multipliers, %d DSPs\n", ip.Tm, ip.Tn, ip.Lanes(), ip.DSPCost())
	// Output: 18x18 = 324 multipliers, 324 DSPs
}

func ExampleBRAMBlocks() {
	// A 1024-deep, 18-bit-wide memory fits a single 18Kb block.
	fmt.Println(fpga.BRAMBlocks(1024, 18))
	// Output: 1
}
