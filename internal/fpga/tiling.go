package fpga

import "fmt"

// This file models the batch + tiling scheme of Figure 9. The accelerator
// streams feature maps through a strip (line) buffer of a few rows.
// Batching images improves weight reuse — one weight load serves B images —
// but, with separate per-image buffers, a batch of 4 needs 4 independently
// allocated strip buffers. Stitching the 4 inputs as a 2×2 tile instead
// widens the strip by 2× only (one dimension), so the stitched scheme keeps
// the full weight reuse at half the buffer cost of separate batching, and
// with a single contiguous allocation there is no per-image rounding waste.

// TilingScheme identifies one buffering strategy of the Figure 9 study.
type TilingScheme int

// The three strategies compared in the Figure 9 experiment.
const (
	SchemeBatch1   TilingScheme = iota // no batching: weights reloaded per image
	SchemeBatch4                       // batch of 4 with four separate strip buffers
	SchemeTiled2x2                     // batch of 4 stitched into one 2×2 tile
)

// String names the scheme. Out-of-range values get a placeholder name
// instead of panicking with an index error — String is called from
// formatted output paths (tables, logs) where a malformed report row must
// not take the process down.
func (s TilingScheme) String() string {
	names := [...]string{"batch=1", "batch=4 separate", "batch=4 tiled 2x2"}
	if s < 0 || int(s) >= len(names) {
		return fmt.Sprintf("scheme(%d)", int(s))
	}
	return names[s]
}

// TilingReport quantifies one scheme.
type TilingReport struct {
	Scheme TilingScheme
	// BRAMBlocks is the strip-buffer cost (double-buffered).
	BRAMBlocks int
	// WeightLoadsPerImage is the number of times the full weight set
	// crosses DDR per processed image.
	WeightLoadsPerImage float64
	// BufferWasteFrac is the fraction of allocated buffer capacity beyond
	// what the feature-map strips actually occupy (bank rounding).
	BufferWasteFrac float64
}

// EvaluateTiling computes the Figure 9 comparison for an accelerator whose
// strip buffer holds stripWords feature-map elements per image at fmBits,
// partitioned across `banks` BRAM banks.
func EvaluateTiling(stripWords int64, fmBits, banks int) []TilingReport {
	alloc := func(words int64, buffers int) (blocks int, waste float64) {
		blocks = FMBufferBlocks(words, fmBits, banks) * 2 * buffers
		capWords := int64(blocks) * 18 * 1024 / int64(fmBits)
		need := 2 * words * int64(buffers)
		if capWords > need {
			waste = float64(capWords-need) / float64(capWords)
		}
		return blocks, waste
	}
	b1, w1 := alloc(stripWords, 1)
	b4, w4 := alloc(stripWords, 4)
	// The 2×2 stitch doubles the strip width: one buffer of 2× the words.
	bt, wt := alloc(2*stripWords, 1)
	return []TilingReport{
		{Scheme: SchemeBatch1, BRAMBlocks: b1, WeightLoadsPerImage: 1, BufferWasteFrac: w1},
		{Scheme: SchemeBatch4, BRAMBlocks: b4, WeightLoadsPerImage: 0.25, BufferWasteFrac: w4},
		{Scheme: SchemeTiled2x2, BRAMBlocks: bt, WeightLoadsPerImage: 0.25, BufferWasteFrac: wt},
	}
}
