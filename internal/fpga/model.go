package fpga

import (
	"fmt"
	"math"

	"skynet/internal/nn"
)

// IPConfig describes the shared Bundle IP: a Tm×Tn multiplier array
// (output-channel × input-channel parallelism) at given weight and
// feature-map bit widths. Because every SkyNet layer is the same Bundle,
// one such IP serves the whole network (§6.4).
type IPConfig struct {
	Tm, Tn int
	WBits  int
	FMBits int
	// Inefficiency is the cycle inflation of real IP execution over the
	// ideal MACs/lane count (pipeline fill, boundary tiles, control).
	// The default of 2.5 is calibrated so full-size SkyNet on Ultra96
	// lands near the published 25.05 FPS operating point.
	Inefficiency float64
	// Batch is the number of images processed per weight load (the
	// batch + tiling scheme of Figure 9).
	Batch int
}

// Lanes returns the multiplier count of the array.
func (c IPConfig) Lanes() int { return c.Tm * c.Tn }

// DSPCost returns the DSP slices the array consumes at its bit widths.
func (c IPConfig) DSPCost() int {
	return int(math.Ceil(float64(c.Lanes()) * DSPPerMult(c.WBits, c.FMBits)))
}

func (c *IPConfig) normalize() {
	if c.Inefficiency <= 0 {
		c.Inefficiency = 2.5
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
}

// AutoConfig sizes the IP "as large as possible within the available FPGA
// resources" (§4.2): the largest square Tm×Tn array whose DSP cost fits
// within the device budget at the requested bit widths.
func AutoConfig(dev Device, wBits, fmBits int) IPConfig {
	per := DSPPerMult(wBits, fmBits)
	budget := float64(dev.DSP)
	side := int(math.Sqrt(budget / per))
	for side > 1 && float64(side*side)*per > budget {
		side--
	}
	cfg := IPConfig{Tm: side, Tn: side, WBits: wBits, FMBits: fmBits}
	cfg.normalize()
	return cfg
}

// LayerKind distinguishes how a layer maps onto the Tm×Tn array.
type LayerKind int

// Layer mapping classes.
const (
	KindConv LayerKind = iota // standard/point-wise convolution
	KindDW                    // depth-wise convolution (diagonal mapping)
)

// LayerWork is the device-independent description of one layer extracted
// from a graph.
type LayerWork struct {
	Kind       LayerKind
	MACs       int64
	InC, OutC  int
	WeightBits int64 // parameter storage at WBits
	FMWords    int64 // output feature-map elements per image
}

// ExtractWork walks a graph whose Forward has been run and returns the
// FPGA-relevant workload of every convolutional layer.
func ExtractWork(g *nn.Graph, ip IPConfig) []LayerWork {
	var works []LayerWork
	for i, n := range g.Nodes {
		var w LayerWork
		switch l := n.Layer.(type) {
		case *nn.Conv2D:
			macs, _ := l.Cost()
			w = LayerWork{Kind: KindConv, MACs: macs, InC: l.InC, OutC: l.OutC,
				WeightBits: int64(l.Weight.W.Len()) * int64(ip.WBits)}
		case *nn.DWConv3:
			macs, _ := l.Cost()
			w = LayerWork{Kind: KindDW, MACs: macs, InC: l.C, OutC: l.C,
				WeightBits: int64(l.Weight.W.Len()) * int64(ip.WBits)}
		default:
			continue
		}
		shp := g.OutShapes[i]
		if shp != nil {
			words := int64(1)
			for _, d := range shp[1:] { // per image: skip batch dim
				words *= int64(d)
			}
			w.FMWords = words
		}
		works = append(works, w)
	}
	return works
}

// effectiveLanes returns how many of the array's multipliers a layer can
// actually use. A depth-wise convolution exercises only the array's
// diagonal (one input channel per output channel), which is exactly why a
// DW+PW Bundle balances well against FPGA resources: the cheap DW layers
// tolerate the reduced parallelism.
func (c IPConfig) effectiveLanes(w LayerWork) float64 {
	if w.Kind == KindDW {
		e := c.Tm
		if w.OutC < e {
			e = w.OutC
		}
		return float64(e)
	}
	em, en := c.Tm, c.Tn
	if w.OutC < em {
		em = w.OutC
	}
	if w.InC < en {
		en = w.InC
	}
	return float64(em * en)
}

// Report summarizes an accelerator estimate.
type Report struct {
	Device     Device
	IP         IPConfig
	LatencyS   float64 // per image
	FPS        float64
	ComputeS   float64
	MemoryS    float64
	DSPUsed    int
	BRAMUsed   int
	UtilDSP    float64
	UtilBRAM   float64
	GOPS       float64 // achieved
	WeightKB   float64
	MaxFMWords int64
	Fits       bool
}

// Estimate models end-to-end single-image latency and resource usage of a
// graph on the device with the given IP. The shared feature-map ping-pong
// buffer receives a fixed share of the device's BRAM (§6.4.1); layers whose
// boundary feature maps fit stay on-chip, larger ones are tiled and
// streamed through DDR. Weight streaming is amortized over the batch.
func Estimate(g *nn.Graph, dev Device, ip IPConfig) Report {
	ip.normalize()
	works := ExtractWork(g, ip)
	if len(works) == 0 {
		panic("fpga: graph has no convolutional layers (run Forward first)")
	}
	// Weight buffer: sized for the largest single layer.
	var maxWBits int64
	for _, w := range works {
		if w.WeightBits > maxWBits {
			maxWBits = w.WeightBits
		}
	}
	wBlocks := BRAMBlocks(int(maxWBits/int64(max(1, ip.WBits))), ip.WBits) * 2 // ping-pong weights
	// FM buffer: the remaining budget, capped at 60% of the device.
	fmBudgetBlocks := dev.BRAM18K*6/10 - wBlocks
	if fmBudgetBlocks < 2*ip.Tn {
		fmBudgetBlocks = 2 * ip.Tn
	}
	// Capacity in FM words of half the budget (the other half is the pong
	// buffer).
	onChipWords := int64(fmBudgetBlocks/2) * 18 * 1024 / int64(ip.FMBits)

	var cycles float64
	var totalMACs, weightBits int64
	var fmTrafficBits int64
	var maxFM int64
	prevWords := works[0].FMWords // input treated as first boundary
	for _, w := range works {
		cycles += float64(w.MACs) / ip.effectiveLanes(w) * ip.Inefficiency
		totalMACs += w.MACs
		weightBits += w.WeightBits
		if w.FMWords > maxFM {
			maxFM = w.FMWords
		}
		// If both sides of a layer boundary fit on chip (times the batch),
		// no DDR round trip is needed; otherwise the FM streams out and
		// back in.
		boundary := (prevWords + w.FMWords) * int64(ip.Batch)
		if boundary > onChipWords {
			fmTrafficBits += 2 * w.FMWords * int64(ip.FMBits) * int64(ip.Batch)
		}
		prevWords = w.FMWords
	}
	compute := cycles / (dev.FreqMHz * 1e6)
	// Input image in + final output out always cross DDR once.
	ioBits := (works[0].FMWords + works[len(works)-1].FMWords) * int64(ip.FMBits)
	memBytes := float64(weightBits)/8/float64(ip.Batch) +
		(float64(fmTrafficBits)/float64(ip.Batch)+float64(ioBits))/8
	memory := memBytes / dev.DDRBandwidth
	lat := compute
	if memory > lat {
		lat = memory
	}
	dsp := ip.DSPCost()
	bram := fmBudgetBlocks + wBlocks
	if bram > dev.BRAM18K {
		bram = dev.BRAM18K
	}
	return Report{
		Device: dev, IP: ip,
		LatencyS: lat, FPS: 1 / lat,
		ComputeS: compute, MemoryS: memory,
		DSPUsed: dsp, BRAMUsed: bram,
		UtilDSP:    float64(dsp) / float64(dev.DSP),
		UtilBRAM:   float64(bram) / float64(dev.BRAM18K),
		GOPS:       2 * float64(totalMACs) / lat / 1e9,
		WeightKB:   float64(weightBits) / 8 / 1024,
		MaxFMWords: maxFM,
		Fits:       dsp <= dev.DSP && bram <= dev.BRAM18K,
	}
}

// FMBufferBlocks returns the BRAM18K primitives for a feature-map buffer of
// `words` elements at `bits` per element, partitioned into `banks` parallel
// banks (one per input-channel lane). Bank depth is rounded up to a power
// of two — HLS address decoding slices address bits, so buffer capacity
// moves in octaves. This is the mechanism behind Figure 2(b): reducing the
// input resize factor below ≈0.9 drops the required depth under the next
// power-of-two boundary and halves the BRAM cost.
func FMBufferBlocks(words int64, bits, banks int) int {
	if banks < 1 {
		banks = 1
	}
	depth := nextPow2(int(math.Ceil(float64(words) / float64(banks))))
	return banks * BRAMBlocks(depth, bits)
}

func nextPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PowerW estimates board power from resource utilization: a static board
// term plus dynamic terms proportional to DSP and BRAM activity. The
// coefficients are calibrated to the published SkyNet Ultra96 operating
// point (7.26 W at ~90% DSP utilization, Table 6).
func (r Report) PowerW() float64 {
	return 4.2 + 2.6*r.UtilDSP + 1.2*r.UtilBRAM
}

// String renders a one-line report summary.
func (r Report) String() string {
	return fmt.Sprintf("%s Tm=%d Tn=%d W%d/FM%d: %.2fms (%.1f FPS, %.1f GOPS), DSP %d/%d, BRAM %d/%d",
		r.Device.Name, r.IP.Tm, r.IP.Tn, r.IP.WBits, r.IP.FMBits,
		r.LatencyS*1e3, r.FPS, r.GOPS, r.DSPUsed, r.Device.DSP, r.BRAMUsed, r.Device.BRAM18K)
}

// OperatingPoint couples a latency/resource estimate with the measured
// accuracy of the number format it assumes — the full triple a deployment
// decision ranks on. The estimator alone can only price a bit width in
// DSPs and cycles; pairing it with a real measured IoU (e.g. from the int8
// engine in internal/quant evaluated via detect.MeanIoU) closes the loop
// the paper's Table 6/7 selection process describes.
type OperatingPoint struct {
	Report
	IoU float64
}

// WithAccuracy attaches a measured validation IoU to the estimate.
func (r Report) WithAccuracy(iou float64) OperatingPoint {
	return OperatingPoint{Report: r, IoU: iou}
}

// String appends the measured accuracy to the estimate summary.
func (p OperatingPoint) String() string {
	return fmt.Sprintf("%s, IoU %.3f", p.Report.String(), p.IoU)
}
