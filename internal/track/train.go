package track

import (
	"math"
	"math/rand"

	"skynet/internal/dataset"
	"skynet/internal/nn"
	"skynet/internal/tensor"
)

// Pair is one training sample: an exemplar crop, a (jittered) search crop,
// and the supervision targets in response-grid coordinates.
type Pair struct {
	Exemplar *tensor.Tensor // [3,E,E]
	Search   *tensor.Tensor // [3,S,S]
	CellY    int
	CellX    int
	SubX     float32 // sub-cell center offset, in cells
	SubY     float32
	TW       float32 // log size ratios vs the nominal fraction
	TH       float32
	MaskGT   *tensor.Tensor // [1,M,M] target mask patch (nil without masks)
}

// MakePair builds a training pair from frames i and j of a sequence. The
// search window is centered near — but deliberately not exactly on — the
// target, so the classifier must localize.
func (t *Tracker) MakePair(seq dataset.Sequence, i, j int, rng *rand.Rand) Pair {
	bi, bj := seq.Boxes[i], seq.Boxes[j]
	imgH, imgW := seq.Frames[j].Dim(1), seq.Frames[j].Dim(2)
	exemplar := t.ExemplarCrop(seq.Frames[i], bi)

	// Jitter the window over the full response field so the classifier
	// must localize rather than learn a center prior (a center shortcut
	// makes the tracker diverge as drift accumulates at inference).
	side := searchSidePixels(bj, imgH, imgW)
	jx := (rng.Float64()*2 - 1) * 0.25 * side / float64(imgW)
	jy := (rng.Float64()*2 - 1) * 0.25 * side / float64(imgH)
	cx, cy := bj.CX+jx, bj.CY+jy
	search, _ := t.SearchCrop(seq.Frames[j], bj, cx, cy)

	r := t.respSize()
	s := float64(t.Cfg.SearchSize)
	// Target center offset from the crop center, in resized-crop pixels.
	offX := (bj.CX - cx) * float64(imgW) * s / side
	offY := (bj.CY - cy) * float64(imgH) * s / side
	cellFX := offX/float64(t.Cfg.Stride) + float64(r-1)/2
	cellFY := offY/float64(t.Cfg.Stride) + float64(r-1)/2
	cellX := clampIdx(int(math.Round(cellFX)), r)
	cellY := clampIdx(int(math.Round(cellFY)), r)

	wFrac := bj.W * float64(imgW) / side
	hFrac := bj.H * float64(imgH) / side
	p := Pair{
		Exemplar: exemplar, Search: search,
		CellY: cellY, CellX: cellX,
		SubX: float32(cellFX - float64(cellX)),
		SubY: float32(cellFY - float64(cellY)),
		TW:   float32(math.Log(math.Max(wFrac, 1e-4) / nominalFrac)),
		TH:   float32(math.Log(math.Max(hFrac, 1e-4) / nominalFrac)),
	}
	if t.Cfg.WithMask {
		// The mask patch covers the exemplar-window footprint around the
		// target in frame j.
		mask := cropAt(seq.Masks[j], bj.CX, bj.CY, side/2, t.Cfg.MaskSize)
		p.MaskGT = mask
	}
	return p
}

func clampIdx(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// Step runs one training step on a pair and returns the total loss. The
// exemplar branch runs in eval mode as a frozen template; gradients flow
// through the search branch into the shared backbone (a standard Siamese
// training simplification, documented in DESIGN.md).
func (t *Tracker) Step(p Pair, opt *nn.SGD) float32 {
	zf := t.features(p.Exemplar, false).Clone()
	xf := t.features(p.Search, true)
	resp := DWXCorr(zf, xf)
	c, r := resp.Dim(0), resp.Dim(1)
	resp4 := resp.Reshape(1, c, r, r)
	cls := t.Cls.Forward([]*tensor.Tensor{resp4}, true)
	reg := t.Reg.Forward([]*tensor.Tensor{resp4}, true)

	total := float32(0)
	// Classification: balanced BCE over the response grid.
	clsGrad := tensor.New(cls.Shape()...)
	nNeg := float32(r*r - 1)
	for y := 0; y < r; y++ {
		for x := 0; x < r; x++ {
			z := cls.At(0, 0, y, x)
			target, weight := float32(0), 0.5/nNeg
			if y == p.CellY && x == p.CellX {
				target, weight = 1, 0.5
			}
			zf64 := float64(z)
			total += weight * float32(math.Max(zf64, 0)-zf64*float64(target)+math.Log1p(math.Exp(-math.Abs(zf64))))
			clsGrad.Set(weight*(nn.Sigmoid(z)-target), 0, 0, y, x)
		}
	}
	// Regression: MSE at the positive cell.
	regGrad := tensor.New(reg.Shape()...)
	targets := [4]float32{p.SubX, p.SubY, p.TW, p.TH}
	const regW = 0.5
	for k := 0; k < 4; k++ {
		d := reg.At(0, k, p.CellY, p.CellX) - targets[k]
		total += regW * d * d
		regGrad.Set(2*regW*d, 0, k, p.CellY, p.CellX)
	}
	dresps := []*tensor.Tensor{
		t.Cls.Backward(clsGrad)[0],
		t.Reg.Backward(regGrad)[0],
	}
	// Mask branch (SiamMask): BCE of the peak-cell mask patch.
	if t.Mask != nil && p.MaskGT != nil {
		m := t.Cfg.MaskSize
		maskOut := t.Mask.Forward([]*tensor.Tensor{resp4}, true)
		maskGrad := tensor.New(maskOut.Shape()...)
		const maskW = 0.5
		inv := maskW / float32(m*m)
		for k := 0; k < m*m; k++ {
			z := maskOut.At(0, k, p.CellY, p.CellX)
			target := p.MaskGT.Data[k]
			zf64 := float64(z)
			total += inv * float32(math.Max(zf64, 0)-zf64*float64(target)+math.Log1p(math.Exp(-math.Abs(zf64))))
			maskGrad.Set(inv*(nn.Sigmoid(z)-target), 0, k, p.CellY, p.CellX)
		}
		dresps = append(dresps, t.Mask.Backward(maskGrad)[0])
	}
	dresp := dresps[0]
	for _, d := range dresps[1:] {
		dresp.AddInPlace(d)
	}
	dxf := DWXCorrBackward(zf, xf, dresp.Reshape(c, r, r))
	dadj := t.Adjust.Backward(dxf.Reshape(1, c, xf.Dim(1), xf.Dim(2)))[0]
	t.Backbone.Backward(dadj)
	nn.ClipGradNorm(t.Params(), 5)
	opt.Step(t.Params())
	return total
}

// TrainConfig controls tracker training.
type TrainConfig struct {
	Steps    int
	LR       float32
	Momentum float32
	Seed     int64
	// Progress, if non-nil, receives the running mean loss every 50 steps.
	Progress func(step int, loss float64)
}

// Train fits the tracker on pairs sampled from the sequences and returns
// the mean loss over the final quarter of training.
func (t *Tracker) Train(seqs []dataset.Sequence, cfg TrainConfig) float64 {
	if cfg.LR == 0 {
		cfg.LR = 0.005
	}
	if cfg.Momentum == 0 {
		cfg.Momentum = 0.9
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewSGD(cfg.LR, cfg.Momentum, 0)
	var tail float64
	var tailN int
	var running float64
	for step := 0; step < cfg.Steps; step++ {
		seq := seqs[rng.Intn(len(seqs))]
		i := rng.Intn(seq.Len())
		j := rng.Intn(seq.Len())
		if i > j {
			i, j = j, i
		}
		loss := float64(t.Step(t.MakePair(seq, i, j, rng), opt))
		running += loss
		if step >= cfg.Steps*3/4 {
			tail += loss
			tailN++
		}
		if cfg.Progress != nil && (step+1)%50 == 0 {
			cfg.Progress(step+1, running/50)
			running = 0
		}
	}
	if tailN == 0 {
		return 0
	}
	return tail / float64(tailN)
}
