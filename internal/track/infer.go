package track

import (
	"fmt"
	"math"
	"time"

	"skynet/internal/dataset"
	"skynet/internal/detect"
	"skynet/internal/nn"
	"skynet/internal/tensor"
)

// Track runs the tracker over a sequence initialized from the first
// frame's ground truth (the GOT-10k one-shot protocol) and returns the
// per-frame IoUs against ground truth for frames 1..N-1.
func (t *Tracker) Track(seq dataset.Sequence) []float64 {
	box := seq.Boxes[0]
	zf := t.features(t.ExemplarCrop(seq.Frames[0], box), false).Clone()
	ious := make([]float64, 0, seq.Len()-1)
	for f := 1; f < seq.Len(); f++ {
		box = t.StepBox(zf, seq.Frames[f], box)
		ious = append(ious, box.IoU(seq.Boxes[f]))
	}
	return ious
}

// StepBox advances the tracked box by one frame given precomputed
// exemplar features. Malformed inputs panic; the tracking service calls
// StepBoxE instead.
func (t *Tracker) StepBox(zf *tensor.Tensor, frame *tensor.Tensor, box detect.Box) detect.Box {
	nb, err := t.StepBoxE(zf, frame, box)
	if err != nil {
		panic(err.Error())
	}
	return nb
}

// checkFrame validates a [3,H,W] frame tensor.
func checkFrame(frame *tensor.Tensor) error {
	if frame == nil || frame.Rank() != 3 {
		return fmt.Errorf("track: frame must be a [C,H,W] tensor, got %v", shapeOf(frame))
	}
	if frame.Dim(0) != 3 {
		return fmt.Errorf("track: frame has %d channels, want 3", frame.Dim(0))
	}
	if frame.Dim(1) < 2 || frame.Dim(2) < 2 {
		return fmt.Errorf("track: frame %v too small to track in", frame.Shape())
	}
	return nil
}

// checkBox validates a tracked box: finite, positive size.
func checkBox(b detect.Box) error {
	for _, v := range [...]float64{b.CX, b.CY, b.W, b.H} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("track: box %+v has a non-finite field", b)
		}
	}
	if b.W <= 0 || b.H <= 0 {
		return fmt.Errorf("track: box %+v has a non-positive size", b)
	}
	return nil
}

func shapeOf(t *tensor.Tensor) []int {
	if t == nil {
		return nil
	}
	return t.Shape()
}

// StepBoxE advances the tracked box by one frame given precomputed
// exemplar features, returning an error — never panicking — on malformed
// inputs. This is the tracking service's per-frame entry point: a bad
// session request must become a 400, not kill a pipeline worker.
func (t *Tracker) StepBoxE(zf *tensor.Tensor, frame *tensor.Tensor, box detect.Box) (detect.Box, error) {
	if err := checkFrame(frame); err != nil {
		return detect.Box{}, err
	}
	if err := checkBox(box); err != nil {
		return detect.Box{}, err
	}
	if zf == nil || zf.Rank() != 3 {
		return detect.Box{}, fmt.Errorf("track: exemplar features must be [C,h,w], got %v", shapeOf(zf))
	}
	imgH, imgW := frame.Dim(1), frame.Dim(2)
	crop, side := t.SearchCrop(frame, box, box.CX, box.CY)
	xf := t.features(crop, false)
	resp, err := t.xcorr(zf, xf)
	if err != nil {
		return detect.Box{}, err
	}
	c, r := resp.Dim(0), resp.Dim(1)
	resp4 := resp.Reshape(1, c, r, r)
	cls := t.Cls.Forward([]*tensor.Tensor{resp4}, false)
	reg := t.Reg.Forward([]*tensor.Tensor{resp4}, false)
	// Peak of the classification map.
	py, px, best := 0, 0, float32(math.Inf(-1))
	for y := 0; y < r; y++ {
		for x := 0; x < r; x++ {
			if v := cls.At(0, 0, y, x); v > best {
				best, py, px = v, y, x
			}
		}
	}
	dx := clampF(reg.At(0, 0, py, px), -1, 1)
	dy := clampF(reg.At(0, 1, py, px), -1, 1)
	tw := clampF(reg.At(0, 2, py, px), -1, 1)
	th := clampF(reg.At(0, 3, py, px), -1, 1)
	s := float64(t.Cfg.SearchSize)
	scale := side / s // search-crop pixel → image pixel
	offX := (float64(px) + float64(dx) - float64(r-1)/2) * float64(t.Cfg.Stride) * scale
	offY := (float64(py) + float64(dy) - float64(r-1)/2) * float64(t.Cfg.Stride) * scale
	nb := box
	nb.CX = clamp01(box.CX + offX/float64(imgW))
	nb.CY = clamp01(box.CY + offY/float64(imgH))
	// Damped size update from the regression head.
	wNew := nominalFrac * math.Exp(float64(tw)) * side / float64(imgW)
	hNew := nominalFrac * math.Exp(float64(th)) * side / float64(imgH)
	const damp = 0.3
	nb.W = clampSize((1-damp)*box.W + damp*wNew)
	nb.H = clampSize((1-damp)*box.H + damp*hNew)
	return nb.Clip(), nil
}

// PeakMask returns the sigmoid mask patch predicted at the response peak
// for the given frame and box — the SiamMask output of Figure 8.
// Malformed inputs panic; the tracking service calls PeakMaskE instead.
func (t *Tracker) PeakMask(zf *tensor.Tensor, frame *tensor.Tensor, box detect.Box) *tensor.Tensor {
	m, err := t.PeakMaskE(zf, frame, box)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// PeakMaskE is PeakMask with malformed inputs reported as errors.
func (t *Tracker) PeakMaskE(zf *tensor.Tensor, frame *tensor.Tensor, box detect.Box) (*tensor.Tensor, error) {
	if t.Mask == nil {
		return nil, fmt.Errorf("track: PeakMask on a tracker without a mask head")
	}
	if err := checkFrame(frame); err != nil {
		return nil, err
	}
	if err := checkBox(box); err != nil {
		return nil, err
	}
	crop, _ := t.SearchCrop(frame, box, box.CX, box.CY)
	xf := t.features(crop, false)
	resp, err := t.xcorr(zf, xf)
	if err != nil {
		return nil, err
	}
	c, r := resp.Dim(0), resp.Dim(1)
	resp4 := resp.Reshape(1, c, r, r)
	cls := t.Cls.Forward([]*tensor.Tensor{resp4}, false)
	masks := t.Mask.Forward([]*tensor.Tensor{resp4}, false)
	py, px, best := 0, 0, float32(math.Inf(-1))
	for y := 0; y < r; y++ {
		for x := 0; x < r; x++ {
			if v := cls.At(0, 0, y, x); v > best {
				best, py, px = v, y, x
			}
		}
	}
	m := t.Cfg.MaskSize
	out := tensor.New(1, m, m)
	for k := 0; k < m*m; k++ {
		out.Data[k] = nn.Sigmoid(masks.At(0, k, py, px))
	}
	return out, nil
}

// Evaluate runs the GOT-10k protocol over the sequences and returns the
// benchmark metrics plus the measured tracking speed in frames/second.
type EvalResult struct {
	AO     float64
	SR50   float64
	SR75   float64
	FPS    float64
	Frames int
}

// Evaluate tracks every sequence and aggregates AO / SR@0.50 / SR@0.75.
func (t *Tracker) Evaluate(seqs []dataset.Sequence) EvalResult {
	var all []float64
	start := time.Now()
	frames := 0
	for _, seq := range seqs {
		ious := t.Track(seq)
		all = append(all, ious...)
		frames += len(ious)
	}
	elapsed := time.Since(start).Seconds()
	res := EvalResult{AO: AO(all), SR50: SR(all, 0.50), SR75: SR(all, 0.75), Frames: frames}
	if elapsed > 0 {
		res.FPS = float64(frames) / elapsed
	}
	return res
}

// ExemplarFeatures precomputes the template features for a sequence's
// first frame, for callers driving step/PeakMask manually.
func (t *Tracker) ExemplarFeatures(seq dataset.Sequence) *tensor.Tensor {
	return t.features(t.ExemplarCrop(seq.Frames[0], seq.Boxes[0]), false).Clone()
}

// ExemplarFeaturesFor fixes a template from one frame and its box — the
// session-start entry point of the tracking service. The returned tensor
// owns its data and stays valid across later forwards.
func (t *Tracker) ExemplarFeaturesFor(frame *tensor.Tensor, box detect.Box) (*tensor.Tensor, error) {
	if err := checkFrame(frame); err != nil {
		return nil, err
	}
	if err := checkBox(box); err != nil {
		return nil, err
	}
	return t.features(t.ExemplarCrop(frame, box), false).Clone(), nil
}

func clampF(v, lo, hi float32) float32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func clampSize(v float64) float64 {
	if v < 0.02 {
		return 0.02
	}
	if v > 0.8 {
		return 0.8
	}
	return v
}

// CropForMaskGT exposes the ground-truth mask patch geometry used in
// training, for mask-quality evaluation.
func (t *Tracker) CropForMaskGT(seq dataset.Sequence, f int) *tensor.Tensor {
	b := seq.Boxes[f]
	side := searchSidePixels(b, seq.Frames[f].Dim(1), seq.Frames[f].Dim(2))
	return cropAt(seq.Masks[f], b.CX, b.CY, side/2, t.Cfg.MaskSize)
}
