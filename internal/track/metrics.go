package track

// AO returns the GOT-10k average-overlap metric: the mean IoU between
// predicted and ground-truth boxes over all frames.
func AO(ious []float64) float64 {
	if len(ious) == 0 {
		return 0
	}
	var s float64
	for _, v := range ious {
		s += v
	}
	return s / float64(len(ious))
}

// SR returns the GOT-10k success rate: the fraction of frames whose IoU
// exceeds the threshold (the benchmark reports SR@0.50 and SR@0.75).
func SR(ious []float64, threshold float64) float64 {
	if len(ious) == 0 {
		return 0
	}
	n := 0
	for _, v := range ious {
		if v > threshold {
			n++
		}
	}
	return float64(n) / float64(len(ious))
}

// SuccessCurve returns SR evaluated at n thresholds spread uniformly over
// [0, 1) — the success plot GOT-10k reports alongside AO.
func SuccessCurve(ious []float64, n int) []float64 {
	if n <= 0 {
		n = 21
	}
	curve := make([]float64, n)
	for i := range curve {
		curve[i] = SR(ious, float64(i)/float64(n))
	}
	return curve
}

// AUC returns the area under the success curve. For fine threshold grids it
// converges to AO (average overlap), the identity GOT-10k exploits; the
// test suite checks that property.
func AUC(curve []float64) float64 {
	if len(curve) == 0 {
		return 0
	}
	var s float64
	for _, v := range curve {
		s += v
	}
	return s / float64(len(curve))
}
