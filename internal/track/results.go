package track

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"skynet/internal/dataset"
	"skynet/internal/detect"
)

func nowSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// This file writes tracking results in the GOT-10k submission layout the
// paper's §7 evaluation used: one directory per sequence containing
// <name>_001.txt with per-frame "x,y,w,h" boxes in pixels and a
// <name>_time.txt with per-frame processing seconds. A local result set
// can therefore be scored by the same tooling the official server runs.

// SequenceResult is one tracked sequence ready for export.
type SequenceResult struct {
	Name   string
	Boxes  []detect.Box // predicted box per frame, including frame 0's init
	Times  []float64    // per-frame seconds; len must match Boxes
	ImageW int
	ImageH int
}

// TrackForSubmission runs the tracker over a sequence and packages the
// predictions (ground-truth init box first, per the protocol).
func (t *Tracker) TrackForSubmission(name string, seq dataset.Sequence) SequenceResult {
	res := SequenceResult{
		Name:   name,
		ImageW: seq.Frames[0].Dim(2),
		ImageH: seq.Frames[0].Dim(1),
	}
	box := seq.Boxes[0]
	res.Boxes = append(res.Boxes, box)
	res.Times = append(res.Times, 0)
	zf := t.ExemplarFeatures(seq)
	for f := 1; f < seq.Len(); f++ {
		start := nowSeconds()
		box = t.StepBox(zf, seq.Frames[f], box)
		res.Boxes = append(res.Boxes, box)
		res.Times = append(res.Times, nowSeconds()-start)
	}
	return res
}

// WriteSubmission writes the result set under dir in the GOT-10k layout.
func WriteSubmission(dir string, results []SequenceResult) error {
	for _, r := range results {
		seqDir := filepath.Join(dir, r.Name)
		if err := os.MkdirAll(seqDir, 0o755); err != nil {
			return err
		}
		if len(r.Times) != len(r.Boxes) {
			return fmt.Errorf("track: %s has %d times for %d boxes", r.Name, len(r.Times), len(r.Boxes))
		}
		bf, err := os.Create(filepath.Join(seqDir, r.Name+"_001.txt"))
		if err != nil {
			return err
		}
		w := bufio.NewWriter(bf)
		for _, b := range r.Boxes {
			x1, y1, _, _ := b.Corners()
			fmt.Fprintf(w, "%.2f,%.2f,%.2f,%.2f\n",
				x1*float64(r.ImageW), y1*float64(r.ImageH),
				b.W*float64(r.ImageW), b.H*float64(r.ImageH))
		}
		if err := w.Flush(); err != nil {
			_ = bf.Close() // best-effort cleanup; the flush error is the one to report
			return err
		}
		if err := bf.Close(); err != nil {
			return err
		}
		tf, err := os.Create(filepath.Join(seqDir, r.Name+"_time.txt"))
		if err != nil {
			return err
		}
		tw := bufio.NewWriter(tf)
		for _, s := range r.Times {
			fmt.Fprintf(tw, "%.6f\n", s)
		}
		if err := tw.Flush(); err != nil {
			_ = tf.Close() // best-effort cleanup; the flush error is the one to report
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
	}
	return nil
}

// ReadSubmissionBoxes parses one sequence's box file back into normalized
// boxes — the reader side of the protocol, used to score a submission
// locally against ground truth.
func ReadSubmissionBoxes(r io.Reader, imageW, imageH int) ([]detect.Box, error) {
	var boxes []detect.Box
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var x, y, w, h float64
		if _, err := fmt.Sscanf(strings.ReplaceAll(text, ",", " "), "%f %f %f %f", &x, &y, &w, &h); err != nil {
			return nil, fmt.Errorf("track: line %d: %w", line, err)
		}
		boxes = append(boxes, detect.Box{
			CX: (x + w/2) / float64(imageW),
			CY: (y + h/2) / float64(imageH),
			W:  w / float64(imageW),
			H:  h / float64(imageH),
		})
	}
	return boxes, sc.Err()
}

// ScoreSubmission evaluates a written submission against the generating
// sequences, returning the benchmark metrics.
func ScoreSubmission(dir string, names []string, seqs []dataset.Sequence) (EvalResult, error) {
	var all []float64
	frames := 0
	for i, name := range names {
		f, err := os.Open(filepath.Join(dir, name, name+"_001.txt"))
		if err != nil {
			return EvalResult{}, err
		}
		boxes, err := ReadSubmissionBoxes(f, seqs[i].Frames[0].Dim(2), seqs[i].Frames[0].Dim(1))
		_ = f.Close() // read-only handle; close failure cannot corrupt anything
		if err != nil {
			return EvalResult{}, err
		}
		if len(boxes) != seqs[i].Len() {
			return EvalResult{}, fmt.Errorf("track: %s has %d boxes for %d frames", name, len(boxes), seqs[i].Len())
		}
		for fIdx := 1; fIdx < seqs[i].Len(); fIdx++ { // frame 0 is the init
			all = append(all, boxes[fIdx].IoU(seqs[i].Boxes[fIdx]))
			frames++
		}
	}
	return EvalResult{AO: AO(all), SR50: SR(all, 0.50), SR75: SR(all, 0.75), Frames: frames}, nil
}
