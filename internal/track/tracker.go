package track

import (
	"fmt"
	"math"
	"math/rand"

	"skynet/internal/dataset"
	"skynet/internal/detect"
	"skynet/internal/nn"
	"skynet/internal/tensor"
)

// Config sizes the tracker. The paper trains SkyNet with 128-pixel
// exemplars and 256-pixel search regions; the defaults here are the same
// geometry scaled 4× down for CPU-budget experiments.
type Config struct {
	ExemplarSize int // exemplar crop side in pixels
	SearchSize   int // search crop side in pixels (2× exemplar)
	FeatC        int // common feature width after the adjust layer
	Stride       int // backbone total stride
	WithMask     bool
	MaskSize     int // side of the predicted mask patch
	Seed         int64
}

// DefaultConfig returns the CPU-scale tracker geometry.
func DefaultConfig() Config {
	return Config{ExemplarSize: 32, SearchSize: 64, FeatC: 32, Stride: 8,
		MaskSize: 16, Seed: 1}
}

// nominalFrac is the expected target width as a fraction of the search
// window under the crop geometry (target ≈ half the exemplar window, the
// exemplar window is half the search window).
const nominalFrac = 0.25

// XCorrBackend selects the cross-correlation lowering used at inference.
type XCorrBackend int

const (
	// XCorrGEMM routes through the blocked float32 GEMM (the default).
	XCorrGEMM XCorrBackend = iota
	// XCorrNaive uses the reference triple loop (the oracle).
	XCorrNaive
	// XCorrInt8 routes through the int8 quantized engine.
	XCorrInt8
)

// String names the backend for benchmarks and flags.
func (b XCorrBackend) String() string {
	switch b {
	case XCorrNaive:
		return "naive"
	case XCorrInt8:
		return "int8"
	default:
		return "gemm"
	}
}

// ParseXCorrBackend maps a flag value onto a backend.
func ParseXCorrBackend(s string) (XCorrBackend, error) {
	switch s {
	case "gemm", "":
		return XCorrGEMM, nil
	case "naive":
		return XCorrNaive, nil
	case "int8":
		return XCorrInt8, nil
	}
	return XCorrGEMM, fmt.Errorf("track: unknown xcorr backend %q (want gemm, naive or int8)", s)
}

// Tracker is a Siamese tracker: a shared backbone and adjust layer feed a
// depth-wise cross-correlation whose response drives classification, box
// regression, and optionally mask heads. With the mask head enabled it is
// the SiamMask-style variant; without, the SiamRPN++-style variant.
type Tracker struct {
	Cfg      Config
	Backbone *nn.Graph
	Adjust   *nn.Conv2D
	Cls      *nn.Conv2D
	Reg      *nn.Conv2D
	Mask     *nn.Conv2D

	// XCorr selects the cross-correlation lowering for inference; the
	// zero value is the GEMM route.
	XCorr XCorrBackend

	// Cached feature-map sides, measured from a real backbone forward the
	// first time the geometry is needed (see featSizes).
	fz, fx int
}

// xcorr dispatches the configured cross-correlation backend.
func (t *Tracker) xcorr(zf, xf *tensor.Tensor) (*tensor.Tensor, error) {
	switch t.XCorr {
	case XCorrNaive:
		return DWXCorrNaive(zf, xf)
	case XCorrInt8:
		return DWXCorrInt8(zf, xf)
	default:
		return DWXCorrE(zf, xf)
	}
}

// New builds a tracker around a headless backbone with the given output
// channel count.
func New(backbone *nn.Graph, backboneC int, cfg Config) *Tracker {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Tracker{
		Cfg:      cfg,
		Backbone: backbone,
		Adjust:   nn.NewPWConv1(rng, backboneC, cfg.FeatC, true),
		Cls:      nn.NewPWConv1(rng, cfg.FeatC, 1, true),
		Reg:      nn.NewPWConv1(rng, cfg.FeatC, 4, true),
	}
	if cfg.WithMask {
		t.Mask = nn.NewPWConv1(rng, cfg.FeatC, cfg.MaskSize*cfg.MaskSize, true)
	}
	return t
}

// Params returns every trainable parameter of the tracker.
func (t *Tracker) Params() []*nn.Param {
	ps := append([]*nn.Param{}, t.Backbone.Params()...)
	ps = append(ps, t.Adjust.Params()...)
	ps = append(ps, t.Cls.Params()...)
	ps = append(ps, t.Reg.Params()...)
	if t.Mask != nil {
		ps = append(ps, t.Mask.Params()...)
	}
	return ps
}

// features runs one [3,s,s] crop through the backbone and adjust layer,
// returning [C,fh,fw].
func (t *Tracker) features(crop *tensor.Tensor, train bool) *tensor.Tensor {
	x := crop.Reshape(1, crop.Dim(0), crop.Dim(1), crop.Dim(2))
	f := t.Backbone.Forward(x, train)
	f = t.Adjust.Forward([]*tensor.Tensor{f}, train)
	return f.Reshape(f.Dim(1), f.Dim(2), f.Dim(3))
}

// searchSidePixels returns the pixel side of the square search window for
// a box in an image of pixel size (imgH, imgW): 4× the target's larger
// dimension, so the exemplar window (half of it) gives the target ~2×
// context, the SiamFC-family convention.
func searchSidePixels(b detect.Box, imgH, imgW int) float64 {
	wPix := b.W * float64(imgW)
	hPix := b.H * float64(imgH)
	m := math.Max(wPix, hPix)
	if m < 4 {
		m = 4
	}
	return 4 * m // 2× the exemplar window, which is 2× the target
}

// cropAt extracts a square crop of `sidePix` pixels centered at the
// normalized point (cx,cy) and resizes it to outPx. Border replication
// handles out-of-image regions.
func cropAt(img *tensor.Tensor, cx, cy, sidePix float64, outPx int) *tensor.Tensor {
	h, w := img.Dim(1), img.Dim(2)
	side := int(math.Round(sidePix))
	if side < 2 {
		side = 2
	}
	y0 := int(math.Round(cy*float64(h) - float64(side)/2))
	x0 := int(math.Round(cx*float64(w) - float64(side)/2))
	crop := dataset.Crop(img, y0, x0, side, side)
	return dataset.BilinearResize(crop, outPx, outPx)
}

// ExemplarCrop extracts the template crop for a box (half the search
// window, so the target fills about half the template).
func (t *Tracker) ExemplarCrop(img *tensor.Tensor, b detect.Box) *tensor.Tensor {
	side := searchSidePixels(b, img.Dim(1), img.Dim(2)) / 2
	return cropAt(img, b.CX, b.CY, side, t.Cfg.ExemplarSize)
}

// SearchCrop extracts the search crop centered at (cx,cy) sized for box b,
// returning the crop and its pixel side.
func (t *Tracker) SearchCrop(img *tensor.Tensor, b detect.Box, cx, cy float64) (*tensor.Tensor, float64) {
	side := searchSidePixels(b, img.Dim(1), img.Dim(2))
	return cropAt(img, cx, cy, side, t.Cfg.SearchSize), side
}

// featSizes returns the exemplar and search feature-map sides, measured
// once by running zero crops through the backbone. Deriving the geometry
// from the real feature shapes — instead of the old ExemplarSize/Stride
// integer division — keeps the training targets and the response map in
// agreement for every crop side, including ones that are not a multiple of
// the backbone stride (where the division silently disagreed and the
// cross-correlation blew up).
func (t *Tracker) featSizes() (fz, fx int) {
	if t.fz == 0 || t.fx == 0 {
		zf := t.features(tensor.New(3, t.Cfg.ExemplarSize, t.Cfg.ExemplarSize), false)
		t.fz = zf.Dim(1)
		xf := t.features(tensor.New(3, t.Cfg.SearchSize, t.Cfg.SearchSize), false)
		t.fx = xf.Dim(1)
	}
	return t.fz, t.fx
}

// respSize returns the response-map side for the configured geometry.
func (t *Tracker) respSize() int {
	fz, fx := t.featSizes()
	return fx - fz + 1
}
