// Package track implements the paper's §7 extension: Siamese object
// trackers in the style of SiamRPN++ (Li et al., 2019) and SiamMask (Wang
// et al., 2019), with swappable backbones so SkyNet can be compared against
// ResNet-50 and AlexNet on GOT-10k-style sequences (Tables 8 and 9). The
// tracker correlates exemplar features against search-region features with
// a depth-wise cross-correlation, classifies each response position as
// target/background, regresses box refinements, and (for the SiamMask
// variant) predicts a segmentation mask patch at the peak.
package track

import (
	"fmt"

	"skynet/internal/tensor"
)

// DWXCorr computes the depth-wise cross-correlation of exemplar features z
// [C,hz,wz] against search features x [C,hx,wx]: each channel of z slides
// over the same channel of x, producing [C, hx-hz+1, wx-wz+1]. This is the
// correlation SiamRPN++ introduced to keep channel identity.
func DWXCorr(z, x *tensor.Tensor) *tensor.Tensor {
	c, hz, wz := z.Dim(0), z.Dim(1), z.Dim(2)
	cx, hx, wx := x.Dim(0), x.Dim(1), x.Dim(2)
	if c != cx {
		panic(fmt.Sprintf("track: xcorr channel mismatch %d vs %d", c, cx))
	}
	oh, ow := hx-hz+1, wx-wz+1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("track: exemplar %v larger than search %v", z.Shape(), x.Shape()))
	}
	out := tensor.New(c, oh, ow)
	for ch := 0; ch < c; ch++ {
		zd := z.Data[ch*hz*wz:]
		xd := x.Data[ch*hx*wx:]
		od := out.Data[ch*oh*ow:]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float32
				for ky := 0; ky < hz; ky++ {
					xrow := xd[(oy+ky)*wx+ox:]
					zrow := zd[ky*wz:]
					for kx := 0; kx < wz; kx++ {
						s += zrow[kx] * xrow[kx]
					}
				}
				od[oy*ow+ox] = s
			}
		}
	}
	return out
}

// DWXCorrBackward propagates the response gradient to the search features
// (the exemplar branch is treated as a frozen template during training, a
// standard Siamese simplification): dx[c, y+ky, x+kx] += dresp[c,y,x] *
// z[c,ky,kx].
func DWXCorrBackward(z, x, dresp *tensor.Tensor) *tensor.Tensor {
	c, hz, wz := z.Dim(0), z.Dim(1), z.Dim(2)
	hx, wx := x.Dim(1), x.Dim(2)
	oh, ow := dresp.Dim(1), dresp.Dim(2)
	dx := tensor.New(c, hx, wx)
	for ch := 0; ch < c; ch++ {
		zd := z.Data[ch*hz*wz:]
		dd := dresp.Data[ch*oh*ow:]
		dxd := dx.Data[ch*hx*wx:]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := dd[oy*ow+ox]
				if g == 0 {
					continue
				}
				for ky := 0; ky < hz; ky++ {
					dxrow := dxd[(oy+ky)*wx+ox:]
					zrow := zd[ky*wz:]
					for kx := 0; kx < wz; kx++ {
						dxrow[kx] += g * zrow[kx]
					}
				}
			}
		}
	}
	return dx
}
