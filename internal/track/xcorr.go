// Package track implements the paper's §7 extension: Siamese object
// trackers in the style of SiamRPN++ (Li et al., 2019) and SiamMask (Wang
// et al., 2019), with swappable backbones so SkyNet can be compared against
// ResNet-50 and AlexNet on GOT-10k-style sequences (Tables 8 and 9). The
// tracker correlates exemplar features against search-region features with
// a depth-wise cross-correlation, classifies each response position as
// target/background, regresses box refinements, and (for the SiamMask
// variant) predicts a segmentation mask patch at the peak.
package track

import (
	"fmt"
	"math"
	"sync"

	"skynet/internal/tensor"
)

// Depth-wise cross-correlation is the per-frame hot path of the streaming
// tracker: every tracked frame correlates the cached exemplar features
// against fresh search features. Three lowerings share one geometry check:
//
//   - The GEMM route (the default): each channel's search plane is lowered
//     with im2col into a [hz*wz, oh*ow] patch matrix and multiplied by the
//     channel's exemplar row — exactly how convolution reaches the blocked
//     float32 GEMM, so the call inherits the kernel-dispatch seam
//     (tensor.SetKernel: purego/AVX2/FMA) and the naive-vs-blocked
//     crossover. Both GEMM paths accumulate k in ascending order, which is
//     the naive loop's (ky, kx) order, so the result is bitwise identical
//     to the oracle.
//   - The naive triple loop (DWXCorrNaive), retained as the test oracle
//     and the reference semantics.
//   - The int8 route (DWXCorrInt8): both operands are quantized per-tensor
//     (symmetric max-abs), lowered with Int8Im2Col, and multiplied in the
//     quantized engine's int8×int8→int32 GEMM; the int32 accumulators are
//     dequantized by the product of the two scales. Integer accumulation
//     is exact, so this path is bitwise deterministic across kernels and
//     worker counts; its accuracy versus the float path is measured as
//     AO/SR parity (EXPERIMENTS.md).

// xcorrGeom validates a depth-wise correlation and returns its geometry.
//
//skynet:hotpath
func xcorrGeom(z, x *tensor.Tensor) (c, hz, wz, hx, wx, oh, ow int, err error) {
	if z.Rank() != 3 || x.Rank() != 3 {
		return 0, 0, 0, 0, 0, 0, 0, fmt.Errorf("track: xcorr wants [C,h,w] operands, got %v and %v", z.Shape(), x.Shape())
	}
	c, hz, wz = z.Dim(0), z.Dim(1), z.Dim(2)
	cx, hxx, wxx := x.Dim(0), x.Dim(1), x.Dim(2)
	if c != cx {
		return 0, 0, 0, 0, 0, 0, 0, fmt.Errorf("track: xcorr channel mismatch %d vs %d", c, cx)
	}
	hx, wx = hxx, wxx
	oh, ow = hx-hz+1, wx-wz+1
	if oh <= 0 || ow <= 0 {
		return 0, 0, 0, 0, 0, 0, 0, fmt.Errorf("track: exemplar %v larger than search %v", z.Shape(), x.Shape())
	}
	return c, hz, wz, hx, wx, oh, ow, nil
}

// xcorrScratch holds the per-call lowering buffers. Steady-state tracking
// reuses them through a free list instead of allocating per frame.
type xcorrScratch struct {
	col  *tensor.Tensor // [hz*wz, oh*ow] float patch matrix
	zi8 []int8  // quantized exemplar codes
	xi8 []int8  // quantized search codes
	ci8 []int8  // int8 patch matrix
	acc []int32 // int32 accumulators, one response plane
}

var xcorrFree = struct {
	mu   sync.Mutex
	list []*xcorrScratch
}{}

// getXCorrScratch pops a pooled scratch, constructing one on a miss.
//
//skynet:hotpath
func getXCorrScratch() *xcorrScratch {
	xcorrFree.mu.Lock()
	defer xcorrFree.mu.Unlock()
	if n := len(xcorrFree.list); n > 0 {
		s := xcorrFree.list[n-1]
		xcorrFree.list = xcorrFree.list[:n-1]
		return s
	}
	//skynet:nolint hotalloc -- free-list miss path: constructs once per concurrent tracker, then the list serves every frame
	return &xcorrScratch{}
}

// putXCorrScratch returns a scratch to the free list.
//
//skynet:hotpath
func putXCorrScratch(s *xcorrScratch) {
	xcorrFree.mu.Lock()
	//skynet:nolint hotalloc -- the backing array grows to peak concurrency once and is reused; steady state appends into capacity
	xcorrFree.list = append(xcorrFree.list, s)
	xcorrFree.mu.Unlock()
}

// DWXCorr computes the depth-wise cross-correlation of exemplar features z
// [C,hz,wz] against search features x [C,hx,wx]: each channel of z slides
// over the same channel of x, producing [C, hx-hz+1, wx-wz+1]. This is the
// correlation SiamRPN++ introduced to keep channel identity. Shape errors
// panic; service code paths use DWXCorrE instead.
func DWXCorr(z, x *tensor.Tensor) *tensor.Tensor {
	out, err := DWXCorrE(z, x)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// DWXCorrE is DWXCorr with shape errors returned instead of panicking —
// the form the tracking service calls, where a malformed session request
// must become a 400, not kill a worker. This is the streaming tracker's
// per-frame hot path: the lowering buffers come from the scratch free
// list, and the only steady-state allocation is the response tensor the
// caller owns (tensor.New carries its own waiver).
//
//skynet:hotpath
func DWXCorrE(z, x *tensor.Tensor) (*tensor.Tensor, error) {
	c, hz, wz, hx, wx, oh, ow, err := xcorrGeom(z, x)
	if err != nil {
		return nil, err
	}
	out := tensor.New(c, oh, ow)
	s := getXCorrScratch()
	k, n := hz*wz, oh*ow
	if s.col == nil || s.col.Dim(0) != k || s.col.Dim(1) != n {
		s.col = tensor.New(k, n)
	}
	for ch := 0; ch < c; ch++ {
		// One channel is a 1-input-channel convolution: im2col the search
		// plane, multiply by the exemplar row. m=1 GEMMs sit below the
		// blocked crossover and run on the naive reference kernel, which
		// shares the ascending-k accumulation order — the dispatch seam
		// decides, exactly as for every other MatMul in the repo.
		plane := tensor.FromSlice(x.Data[ch*hx*wx:(ch+1)*hx*wx], 1, hx, wx)
		tensor.Im2Col(s.col, plane, hz, wz, 1, 0)
		zrow := tensor.FromSlice(z.Data[ch*k:(ch+1)*k], 1, k)
		orow := tensor.FromSlice(out.Data[ch*n:(ch+1)*n], 1, n)
		tensor.MatMulInto(orow, zrow, s.col)
	}
	putXCorrScratch(s)
	return out, nil
}

// DWXCorrNaive is the reference triple-loop lowering, retained as the
// oracle the GEMM and int8 routes are tested against.
func DWXCorrNaive(z, x *tensor.Tensor) (*tensor.Tensor, error) {
	c, hz, wz, hx, wx, oh, ow, err := xcorrGeom(z, x)
	if err != nil {
		return nil, err
	}
	out := tensor.New(c, oh, ow)
	for ch := 0; ch < c; ch++ {
		zd := z.Data[ch*hz*wz:]
		xd := x.Data[ch*hx*wx:]
		od := out.Data[ch*oh*ow:]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float32
				for ky := 0; ky < hz; ky++ {
					xrow := xd[(oy+ky)*wx+ox:]
					zrow := zd[ky*wz:]
					for kx := 0; kx < wz; kx++ {
						s += zrow[kx] * xrow[kx]
					}
				}
				od[oy*ow+ox] = s
			}
		}
	}
	return out, nil
}

// quantizeSym quantizes src into int8 codes with a symmetric per-tensor
// scale (maxAbs/127) and returns the scale. An all-zero tensor gets scale
// 1 so dequantization stays finite.
//
//skynet:hotpath
func quantizeSym(dst []int8, src []float32) float32 {
	var maxAbs float32
	for _, v := range src {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 1
	}
	scale := maxAbs / 127
	inv := 1 / float64(scale)
	for i, v := range src {
		// Round half to even, the quantized engine's convention
		// (quant.quantizeInto), so ties carry no directional bias.
		q := math.RoundToEven(float64(v) * inv)
		if q > 127 {
			q = 127
		}
		if q < -127 {
			q = -127
		}
		dst[i] = int8(q)
	}
	return scale
}

// DWXCorrInt8 computes the depth-wise cross-correlation through the int8
// engine: per-tensor symmetric quantization of both operands, int8 im2col,
// the int8×int8→int32 GEMM, and a dequantizing epilogue. The response is
// an approximation of the float path whose AO/SR parity is measured in
// EXPERIMENTS.md; exact integer accumulation makes it bitwise
// deterministic across kernels and worker counts.
//
//skynet:hotpath
func DWXCorrInt8(z, x *tensor.Tensor) (*tensor.Tensor, error) {
	c, hz, wz, hx, wx, oh, ow, err := xcorrGeom(z, x)
	if err != nil {
		return nil, err
	}
	out := tensor.New(c, oh, ow)
	s := getXCorrScratch()
	k, n := hz*wz, oh*ow
	if len(s.zi8) < c*k {
		//skynet:nolint hotalloc -- grow-once scratch: sized on the first frame of a geometry, reused afterwards
		s.zi8 = make([]int8, c*k)
	}
	if len(s.xi8) < c*hx*wx {
		//skynet:nolint hotalloc -- grow-once scratch: sized on the first frame of a geometry, reused afterwards
		s.xi8 = make([]int8, c*hx*wx)
	}
	if len(s.ci8) < k*n {
		//skynet:nolint hotalloc -- grow-once scratch: sized on the first frame of a geometry, reused afterwards
		s.ci8 = make([]int8, k*n)
	}
	if len(s.acc) < n {
		//skynet:nolint hotalloc -- grow-once scratch: sized on the first frame of a geometry, reused afterwards
		s.acc = make([]int32, n)
	}
	zScale := quantizeSym(s.zi8[:c*k], z.Data)
	xScale := quantizeSym(s.xi8[:c*hx*wx], x.Data)
	mult := zScale * xScale
	for ch := 0; ch < c; ch++ {
		tensor.Int8Im2Col(s.ci8[:k*n], s.xi8[ch*hx*wx:(ch+1)*hx*wx], 1, hx, wx, hz, wz, 1, 0)
		tensor.Int8GEMMInto(s.acc[:n], s.zi8[ch*k:(ch+1)*k], s.ci8[:k*n], 1, n, k)
		od := out.Data[ch*n : (ch+1)*n]
		for i, a := range s.acc[:n] {
			od[i] = float32(a) * mult
		}
	}
	putXCorrScratch(s)
	return out, nil
}

// DWXCorrBackward propagates the response gradient to the search features
// (the exemplar branch is treated as a frozen template during training, a
// standard Siamese simplification): dx[c, y+ky, x+kx] += dresp[c,y,x] *
// z[c,ky,kx].
func DWXCorrBackward(z, x, dresp *tensor.Tensor) *tensor.Tensor {
	dx, err := DWXCorrBackwardE(z, x, dresp)
	if err != nil {
		panic(err.Error())
	}
	return dx
}

// DWXCorrBackwardE is DWXCorrBackward with shape errors returned instead
// of panicking.
func DWXCorrBackwardE(z, x, dresp *tensor.Tensor) (*tensor.Tensor, error) {
	c, hz, wz, hx, wx, oh, ow, err := xcorrGeom(z, x)
	if err != nil {
		return nil, err
	}
	if dresp.Rank() != 3 || dresp.Dim(0) != c || dresp.Dim(1) != oh || dresp.Dim(2) != ow {
		return nil, fmt.Errorf("track: xcorr gradient shape %v, want [%d %d %d]", dresp.Shape(), c, oh, ow)
	}
	dx := tensor.New(c, hx, wx)
	for ch := 0; ch < c; ch++ {
		zd := z.Data[ch*hz*wz:]
		dd := dresp.Data[ch*oh*ow:]
		dxd := dx.Data[ch*hx*wx:]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := dd[oy*ow+ox]
				if g == 0 {
					continue
				}
				for ky := 0; ky < hz; ky++ {
					dxrow := dxd[(oy+ky)*wx+ox:]
					zrow := zd[ky*wz:]
					for kx := 0; kx < wz; kx++ {
						dxrow[kx] += g * zrow[kx]
					}
				}
			}
		}
	}
	return dx, nil
}
