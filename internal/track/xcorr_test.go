package track

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"skynet/internal/tensor"
)

// xcorrShapes are the depth-wise correlation geometries the SkyNet
// trackers actually run — the default config (32 channels, 4×4 exemplar
// over an 8×8 search map), the test-scale 64-channel variant, plus
// remainder shapes whose patch counts are not multiples of any blocking
// factor (odd sides, rectangular search maps, 1×1 exemplars).
var xcorrShapes = []struct{ c, hz, wz, hx, wx int }{
	{32, 4, 4, 8, 8},   // DefaultConfig geometry after stride-8 features
	{64, 4, 4, 8, 8},   // tinyTracker (width 0.125 SkyNet A) geometry
	{32, 2, 2, 5, 4},   // rectangular search map
	{3, 3, 3, 9, 7},    // odd everything
	{7, 1, 1, 6, 6},    // 1×1 exemplar: pure scaling
	{5, 5, 5, 13, 11},  // larger remainder shape
	{1, 2, 3, 4, 5},    // single channel, non-square exemplar
	{16, 4, 4, 17, 13}, // bigger map, prime-ish sides
}

func randT(rng *rand.Rand, dims ...int) *tensor.Tensor {
	t := tensor.New(dims...)
	t.RandNormal(rng, 0, 1)
	return t
}

// withKernels runs fn under purego and — when the binary has them — each
// asm kernel, restoring the previous kernel afterwards.
func withKernels(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	old := tensor.KernelName()
	defer func() {
		if err := tensor.SetKernel(old); err != nil {
			t.Fatalf("restoring kernel %q: %v", old, err)
		}
	}()
	for _, name := range []string{"purego", "avx2", "avx2fma"} {
		if !tensor.HasKernel(name) {
			continue
		}
		if err := tensor.SetKernel(name); err != nil {
			t.Fatalf("SetKernel(%q): %v", name, err)
		}
		t.Run("kernel="+name, fn)
	}
}

// TestDWXCorrGEMMBitwiseMatchesNaive pins the GEMM lowering to the naive
// oracle bit for bit at every tracker shape, under every available kernel
// and at worker counts 1 and 8. Both routes accumulate k in ascending
// order, so this is exact equality, not a tolerance.
func TestDWXCorrGEMMBitwiseMatchesNaive(t *testing.T) {
	withKernels(t, func(t *testing.T) {
		oldPar := tensor.MaxParallelism
		defer func() { tensor.MaxParallelism = oldPar }()
		for _, par := range []int{1, 8} {
			tensor.MaxParallelism = par
			for _, s := range xcorrShapes {
				rng := rand.New(rand.NewSource(int64(s.c*1000 + s.hx)))
				z := randT(rng, s.c, s.hz, s.wz)
				x := randT(rng, s.c, s.hx, s.wx)
				want, err := DWXCorrNaive(z, x)
				if err != nil {
					t.Fatalf("naive %v: %v", s, err)
				}
				got, err := DWXCorrE(z, x)
				if err != nil {
					t.Fatalf("gemm %v: %v", s, err)
				}
				for i := range want.Data {
					if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
						t.Fatalf("par=%d shape=%v: bit mismatch at %d: gemm %x naive %x",
							par, s, i, math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
					}
				}
			}
		}
	})
}

// TestDWXCorrInt8Deterministic pins the int8 route bitwise across kernels
// and worker counts: integer accumulation is exact, so every configuration
// must produce the same dequantized response.
func TestDWXCorrInt8Deterministic(t *testing.T) {
	type key struct{ shape, idx int }
	golden := map[key]uint32{}
	first := true
	run := func(t *testing.T) {
		oldPar := tensor.MaxParallelism
		defer func() { tensor.MaxParallelism = oldPar }()
		for _, par := range []int{1, 8} {
			tensor.MaxParallelism = par
			for si, s := range xcorrShapes {
				rng := rand.New(rand.NewSource(int64(si + 7)))
				z := randT(rng, s.c, s.hz, s.wz)
				x := randT(rng, s.c, s.hx, s.wx)
				got, err := DWXCorrInt8(z, x)
				if err != nil {
					t.Fatalf("int8 %v: %v", s, err)
				}
				for i, v := range got.Data {
					bits := math.Float32bits(v)
					k := key{si, i}
					if prev, ok := golden[k]; ok {
						if prev != bits {
							t.Fatalf("par=%d shape=%v: int8 response differs from first run at %d", par, s, i)
						}
					} else if first {
						golden[k] = bits
					}
				}
			}
			first = false
		}
	}
	withKernels(t, run)
}

// TestDWXCorrInt8ApproximatesFloat bounds the int8 quantization error by
// the two operands' scales: |err| <= mult * k * something small relative to
// the response magnitude at tracker shapes.
func TestDWXCorrInt8ApproximatesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	z := randT(rng, 32, 4, 4)
	x := randT(rng, 32, 8, 8)
	want, err := DWXCorrNaive(z, x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DWXCorrInt8(z, x)
	if err != nil {
		t.Fatal(err)
	}
	var maxAbs float64
	for _, v := range want.Data {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	for i := range want.Data {
		if diff := math.Abs(float64(got.Data[i] - want.Data[i])); diff > 0.05*maxAbs {
			t.Fatalf("int8 response off by %.4f (%.1f%% of peak) at %d", diff, 100*diff/maxAbs, i)
		}
	}
}

// TestDWXCorrErrors exercises the error API: malformed geometry must come
// back as an error from every E-variant and as a panic from the wrappers.
func TestDWXCorrErrors(t *testing.T) {
	z34 := tensor.New(3, 4, 4)
	x38 := tensor.New(3, 8, 8)
	cases := []struct {
		name string
		z, x *tensor.Tensor
	}{
		{"rank", tensor.New(3, 4), x38},
		{"channels", tensor.New(2, 4, 4), x38},
		{"too-large", tensor.New(3, 9, 9), x38},
	}
	for _, tc := range cases {
		if _, err := DWXCorrE(tc.z, tc.x); err == nil {
			t.Fatalf("%s: DWXCorrE accepted bad geometry", tc.name)
		}
		if _, err := DWXCorrNaive(tc.z, tc.x); err == nil {
			t.Fatalf("%s: DWXCorrNaive accepted bad geometry", tc.name)
		}
		if _, err := DWXCorrInt8(tc.z, tc.x); err == nil {
			t.Fatalf("%s: DWXCorrInt8 accepted bad geometry", tc.name)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("DWXCorr did not panic on bad geometry")
			}
		}()
		DWXCorr(tensor.New(2, 4, 4), x38)
	}()
	if _, err := DWXCorrBackwardE(z34, x38, tensor.New(3, 4, 4)); err == nil {
		t.Fatal("DWXCorrBackwardE accepted a wrong gradient shape")
	}
}

// TestQuantizeSym pins the quantizer's conventions: symmetric scale,
// round-half-to-even ties, zero tensors quantize to scale 1.
func TestQuantizeSym(t *testing.T) {
	dst := make([]int8, 4)
	if s := quantizeSym(dst, []float32{0, 0, 0, 0}); s != 1 {
		t.Fatalf("all-zero scale %v, want 1", s)
	}
	src := []float32{127, -127, 63.5, -0.5}
	scale := quantizeSym(dst, src)
	if scale != 1 {
		t.Fatalf("scale %v, want 1 for maxAbs 127", scale)
	}
	// 63.5 and -0.5 are exact ties: round-half-to-even gives 64 and -0.
	want := []int8{127, -127, 64, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("code[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
}

// TestTrackerXCorrBackends runs one identical step under every backend:
// gemm must match naive bitwise end-to-end through the tracker, and int8
// must produce a finite, clipped box.
func TestTrackerXCorrBackends(t *testing.T) {
	tr := tinyTracker(false, 3)
	seqs := testSequences(1)
	seq := seqs[0]
	zf := tr.ExemplarFeatures(seq)

	boxes := map[XCorrBackend][4]float64{}
	for _, b := range []XCorrBackend{XCorrGEMM, XCorrNaive, XCorrInt8} {
		tr.XCorr = b
		nb, err := tr.StepBoxE(zf, seq.Frames[1], seq.Boxes[0])
		if err != nil {
			t.Fatalf("backend %v: %v", b, err)
		}
		boxes[b] = [4]float64{nb.CX, nb.CY, nb.W, nb.H}
	}
	tr.XCorr = XCorrGEMM
	if boxes[XCorrGEMM] != boxes[XCorrNaive] {
		t.Fatalf("gemm box %v != naive box %v", boxes[XCorrGEMM], boxes[XCorrNaive])
	}
	for _, v := range boxes[XCorrInt8] {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("int8 box not finite: %v", boxes[XCorrInt8])
		}
	}
}

// TestParseXCorrBackend pins the flag surface.
func TestParseXCorrBackend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want XCorrBackend
	}{{"gemm", XCorrGEMM}, {"", XCorrGEMM}, {"naive", XCorrNaive}, {"int8", XCorrInt8}} {
		got, err := ParseXCorrBackend(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseXCorrBackend(%q) = %v, %v", tc.in, got, err)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseXCorrBackend("cuda"); err == nil {
		t.Fatal("ParseXCorrBackend accepted an unknown backend")
	}
}

// TestStepBoxEValidates pins the service-boundary contract: malformed
// frames, boxes and features come back as errors, never panics.
func TestStepBoxEValidates(t *testing.T) {
	tr := tinyTracker(false, 5)
	seq := testSequences(1)[0]
	zf := tr.ExemplarFeatures(seq)
	good := seq.Boxes[0]

	cases := []struct {
		name  string
		zf    *tensor.Tensor
		frame *tensor.Tensor
		box   [4]float64
	}{
		{"nil-frame", zf, nil, [4]float64{good.CX, good.CY, good.W, good.H}},
		{"rank-2-frame", zf, tensor.New(3, 4), [4]float64{good.CX, good.CY, good.W, good.H}},
		{"4-channel-frame", zf, tensor.New(4, 96, 96), [4]float64{good.CX, good.CY, good.W, good.H}},
		{"tiny-frame", zf, tensor.New(3, 1, 1), [4]float64{good.CX, good.CY, good.W, good.H}},
		{"nan-box", zf, seq.Frames[1], [4]float64{math.NaN(), good.CY, good.W, good.H}},
		{"zero-size-box", zf, seq.Frames[1], [4]float64{good.CX, good.CY, 0, good.H}},
		{"nil-features", nil, seq.Frames[1], [4]float64{good.CX, good.CY, good.W, good.H}},
	}
	for _, tc := range cases {
		b := good
		b.CX, b.CY, b.W, b.H = tc.box[0], tc.box[1], tc.box[2], tc.box[3]
		if _, err := tr.StepBoxE(tc.zf, tc.frame, b); err == nil {
			t.Fatalf("%s: StepBoxE accepted malformed input", tc.name)
		}
	}
	if _, err := tr.ExemplarFeaturesFor(nil, good); err == nil {
		t.Fatal("ExemplarFeaturesFor accepted a nil frame")
	}
	if _, err := tr.PeakMaskE(zf, seq.Frames[1], good); err == nil {
		t.Fatal("PeakMaskE accepted a tracker without a mask head")
	}
}

func BenchmarkDWXCorr(b *testing.B) {
	for _, s := range []struct{ c, hz, wz, hx, wx int }{{32, 4, 4, 8, 8}, {64, 4, 4, 8, 8}} {
		rng := rand.New(rand.NewSource(1))
		z := randT(rng, s.c, s.hz, s.wz)
		x := randT(rng, s.c, s.hx, s.wx)
		name := fmt.Sprintf("%dx%dx%d_%dx%d", s.c, s.hz, s.wz, s.hx, s.wx)
		b.Run("gemm/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = DWXCorrE(z, x)
			}
		})
		b.Run("naive/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = DWXCorrNaive(z, x)
			}
		})
		b.Run("int8/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = DWXCorrInt8(z, x)
			}
		})
	}
}
