package track

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"skynet/internal/backbone"
	"skynet/internal/dataset"
	"skynet/internal/nn"
	"skynet/internal/tensor"
)

func TestAOEqualsMeanIoU(t *testing.T) {
	ious := []float64{0.2, 0.4, 0.9}
	if got := AO(ious); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("AO = %v, want 0.5", got)
	}
	if AO(nil) != 0 {
		t.Fatal("AO of empty must be 0")
	}
}

func TestSRThresholds(t *testing.T) {
	ious := []float64{0.2, 0.55, 0.8, 0.76}
	if got := SR(ious, 0.50); got != 0.75 {
		t.Fatalf("SR@0.5 = %v, want 0.75", got)
	}
	if got := SR(ious, 0.75); got != 0.5 {
		t.Fatalf("SR@0.75 = %v, want 0.5", got)
	}
}

// Property: SR is monotone non-increasing in the threshold, and SR@0 ≥ AO
// bounds hold trivially.
func TestQuickSRMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ious := make([]float64, 1+rng.Intn(50))
		for i := range ious {
			ious[i] = rng.Float64()
		}
		prev := 1.1
		for _, th := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			s := SR(ious, th)
			if s > prev+1e-12 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// naive xcorr for validation.
func naiveXCorr(z, x *tensor.Tensor) *tensor.Tensor {
	c, hz, wz := z.Dim(0), z.Dim(1), z.Dim(2)
	hx, wx := x.Dim(1), x.Dim(2)
	oh, ow := hx-hz+1, wx-wz+1
	out := tensor.New(c, oh, ow)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float32
				for ky := 0; ky < hz; ky++ {
					for kx := 0; kx < wz; kx++ {
						s += z.At(ch, ky, kx) * x.At(ch, oy+ky, ox+kx)
					}
				}
				out.Set(s, ch, oy, ox)
			}
		}
	}
	return out
}

func TestDWXCorrMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := tensor.New(3, 2, 2)
	z.RandNormal(rng, 0, 1)
	x := tensor.New(3, 5, 4)
	x.RandNormal(rng, 0, 1)
	got := DWXCorr(z, x)
	want := naiveXCorr(z, x)
	for i := range want.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-5 {
			t.Fatalf("xcorr mismatch at %d", i)
		}
	}
}

func TestDWXCorrPeakAtMatch(t *testing.T) {
	// Embed the exemplar pattern in the search region; the response must
	// peak at the embedding position.
	rng := rand.New(rand.NewSource(2))
	z := tensor.New(2, 3, 3)
	z.RandNormal(rng, 0, 1)
	x := tensor.New(2, 8, 8)
	x.RandNormal(rng, 0, 0.05)
	py, px := 4, 2
	for c := 0; c < 2; c++ {
		for y := 0; y < 3; y++ {
			for xx := 0; xx < 3; xx++ {
				x.Set(z.At(c, y, xx), c, py+y, px+xx)
			}
		}
	}
	resp := DWXCorr(z, x)
	// Sum over channels and find the argmax.
	oh, ow := resp.Dim(1), resp.Dim(2)
	by, bx, best := -1, -1, float32(math.Inf(-1))
	for y := 0; y < oh; y++ {
		for xx := 0; xx < ow; xx++ {
			s := resp.At(0, y, xx) + resp.At(1, y, xx)
			if s > best {
				best, by, bx = s, y, xx
			}
		}
	}
	if by != py || bx != px {
		t.Fatalf("response peak at (%d,%d), want (%d,%d)", by, bx, py, px)
	}
}

func TestDWXCorrBackwardNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := tensor.New(2, 2, 2)
	z.RandNormal(rng, 0, 1)
	x := tensor.New(2, 4, 4)
	x.RandNormal(rng, 0, 1)
	r := tensor.New(2, 3, 3)
	r.RandNormal(rng, 0, 1)
	dx := DWXCorrBackward(z, x, r)
	const eps, tol = 1e-2, 1e-3
	for _, i := range []int{0, 3, 7, 13, 21, 31} {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		fp := float64(DWXCorr(z, x).Dot(r))
		x.Data[i] = orig - eps
		fm := float64(DWXCorr(z, x).Dot(r))
		x.Data[i] = orig
		num := (fp - fm) / (2 * eps)
		if math.Abs(num-float64(dx.Data[i])) > tol*(1+math.Abs(num)) {
			t.Fatalf("xcorr grad mismatch at %d: %v vs %v", i, dx.Data[i], num)
		}
	}
}

// tinyTracker builds a SkyNet-backbone tracker at test scale.
func tinyTracker(withMask bool, seed int64) *Tracker {
	rng := rand.New(rand.NewSource(seed))
	bcfg := backbone.Config{Width: 0.125, InC: 3, HeadChannels: 0, ReLU6: true}
	bb := backbone.SkyNetA(rng, bcfg)
	cfg := DefaultConfig()
	cfg.WithMask = withMask
	cfg.Seed = seed
	// SkyNet A headless at width 0.125 ends with 64-channel features.
	return New(bb, 64, cfg)
}

func testSequences(n int) []dataset.Sequence {
	cfg := dataset.DefaultConfig()
	cfg.W, cfg.H = 96, 96 // square frames for square crops
	cfg.Clutter = 1
	gen := dataset.NewGenerator(cfg)
	sc := dataset.DefaultSequenceConfig()
	sc.Length = 8
	return gen.Sequences(n, sc)
}

func TestTrackerShapes(t *testing.T) {
	tr := tinyTracker(false, 1)
	seqs := testSequences(1)
	rng := rand.New(rand.NewSource(4))
	p := tr.MakePair(seqs[0], 0, 3, rng)
	if p.Exemplar.Dim(1) != 32 || p.Search.Dim(1) != 64 {
		t.Fatalf("crop sizes %v / %v", p.Exemplar.Shape(), p.Search.Shape())
	}
	r := tr.respSize()
	if r != 5 {
		t.Fatalf("response size %d, want 5", r)
	}
	if p.CellX < 0 || p.CellX >= r || p.CellY < 0 || p.CellY >= r {
		t.Fatalf("target cell (%d,%d) outside response", p.CellY, p.CellX)
	}
}

func TestTrackerStepReducesLoss(t *testing.T) {
	tr := tinyTracker(false, 2)
	seqs := testSequences(2)
	rng := rand.New(rand.NewSource(5))
	opt := nn.NewSGD(0.01, 0.9, 0)
	var first, last float32
	for i := 0; i < 30; i++ {
		seq := seqs[i%2]
		p := tr.MakePair(seq, 0, 1+i%4, rng)
		loss := tr.Step(p, opt)
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("training loss did not decrease: %v -> %v", first, last)
	}
}

func TestTrackedBoxesFollowTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("900-step tracker training exceeds the -short budget")
	}
	// Generalizing to an unseen object appearance needs appearance
	// diversity in training: six training sequences, two held out.
	tr := tinyTracker(false, 4)
	seqs := testSequences(8)
	tr.Train(seqs[:6], TrainConfig{Steps: 900, LR: 0.01, Seed: 6})
	ious := append(tr.Track(seqs[6]), tr.Track(seqs[7])...)
	if len(ious) != (seqs[6].Len()-1)+(seqs[7].Len()-1) {
		t.Fatalf("unexpected iou count %d", len(ious))
	}
	// A trained tracker on slow synthetic motion must keep meaningful
	// overlap on average (the target moves ≤ 3% per frame from a perfect
	// init).
	if AO(ious) < 0.25 {
		t.Fatalf("AO %.3f too low — tracker lost the target", AO(ious))
	}
}

func TestEvaluateAggregates(t *testing.T) {
	tr := tinyTracker(false, 7)
	seqs := testSequences(2)
	res := tr.Evaluate(seqs)
	if res.Frames != (seqs[0].Len()-1)+(seqs[1].Len()-1) {
		t.Fatalf("frames %d", res.Frames)
	}
	if res.FPS <= 0 {
		t.Fatal("FPS must be measured")
	}
	if res.AO < 0 || res.AO > 1 || res.SR50 < 0 || res.SR50 > 1 {
		t.Fatal("metrics out of range")
	}
	if res.SR75 > res.SR50 {
		t.Fatal("SR@0.75 cannot exceed SR@0.50")
	}
}

func TestSiamMaskVariant(t *testing.T) {
	tr := tinyTracker(true, 8)
	if tr.Mask == nil {
		t.Fatal("mask head missing")
	}
	seqs := testSequences(1)
	rng := rand.New(rand.NewSource(9))
	p := tr.MakePair(seqs[0], 0, 2, rng)
	if p.MaskGT == nil || p.MaskGT.Dim(1) != 16 {
		t.Fatalf("mask ground truth %v", p.MaskGT)
	}
	// The GT mask patch must contain both object and background pixels.
	if p.MaskGT.Max() == p.MaskGT.Min() {
		t.Fatal("degenerate mask patch")
	}
	opt := nn.NewSGD(0.01, 0.9, 0)
	var first, last float32
	for i := 0; i < 20; i++ {
		loss := tr.Step(tr.MakePair(seqs[0], 0, 1+i%4, rng), opt)
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("SiamMask training loss did not decrease: %v -> %v", first, last)
	}
	zf := tr.ExemplarFeatures(seqs[0])
	mask := tr.PeakMask(zf, seqs[0].Frames[1], seqs[0].Boxes[1])
	if mask.Dim(1) != 16 || mask.Min() < 0 || mask.Max() > 1 {
		t.Fatalf("peak mask invalid: %v range [%v,%v]", mask.Shape(), mask.Min(), mask.Max())
	}
}

func TestPeakMaskPanicsWithoutHead(t *testing.T) {
	tr := tinyTracker(false, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("PeakMask without a mask head must panic")
		}
	}()
	seqs := testSequences(1)
	zf := tr.ExemplarFeatures(seqs[0])
	tr.PeakMask(zf, seqs[0].Frames[1], seqs[0].Boxes[1])
}

func TestTrackSingleFrameSequence(t *testing.T) {
	// Failure injection: a one-frame clip has nothing to track; the loop
	// and metrics must degrade gracefully.
	tr := tinyTracker(false, 20)
	cfg := dataset.DefaultConfig()
	cfg.W, cfg.H = 96, 96
	gen := dataset.NewGenerator(cfg)
	seq := gen.Sequence(dataset.SequenceConfig{Length: 1})
	ious := tr.Track(seq)
	if len(ious) != 0 {
		t.Fatalf("one-frame clip produced %d ious", len(ious))
	}
	res := tr.Evaluate([]dataset.Sequence{seq})
	if res.Frames != 0 || res.AO != 0 {
		t.Fatalf("empty evaluation should be zeroed: %+v", res)
	}
}

// Property: the area under the success curve converges to AO as the
// threshold grid refines (the GOT-10k identity E[IoU] = ∫ SR(t) dt).
func TestQuickAUCConvergesToAO(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ious := make([]float64, 10+rng.Intn(40))
		for i := range ious {
			ious[i] = rng.Float64()
		}
		auc := AUC(SuccessCurve(ious, 2000))
		return math.Abs(auc-AO(ious)) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSuccessCurveMonotone(t *testing.T) {
	ious := []float64{0.1, 0.4, 0.6, 0.9}
	curve := SuccessCurve(ious, 50)
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Fatal("success curve must be non-increasing")
		}
	}
	if curve[0] != 1 {
		t.Fatalf("SR at threshold 0 should be 1 for positive IoUs, got %v", curve[0])
	}
}

func TestSubmissionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := tinyTracker(false, 30)
	seqs := testSequences(2)
	names := []string{"seq-0001", "seq-0002"}
	var results []SequenceResult
	for i, seq := range seqs {
		r := tr.TrackForSubmission(names[i], seq)
		if len(r.Boxes) != seq.Len() || len(r.Times) != seq.Len() {
			t.Fatalf("result lengths %d/%d for %d frames", len(r.Boxes), len(r.Times), seq.Len())
		}
		// Frame 0 must be the ground-truth init.
		if r.Boxes[0] != seq.Boxes[0] {
			t.Fatal("first box must be the init box")
		}
		results = append(results, r)
	}
	if err := WriteSubmission(dir, results); err != nil {
		t.Fatal(err)
	}
	// Score the written files: must agree with direct evaluation of the
	// recorded boxes.
	scored, err := ScoreSubmission(dir, names, seqs)
	if err != nil {
		t.Fatal(err)
	}
	var direct []float64
	for i, r := range results {
		for f := 1; f < seqs[i].Len(); f++ {
			direct = append(direct, r.Boxes[f].IoU(seqs[i].Boxes[f]))
		}
	}
	if math.Abs(scored.AO-AO(direct)) > 0.01 {
		t.Fatalf("scored AO %.4f vs direct %.4f (pixel rounding should be tiny)", scored.AO, AO(direct))
	}
}

func TestReadSubmissionBoxesRejectsGarbage(t *testing.T) {
	if _, err := ReadSubmissionBoxes(strings.NewReader("not,numbers,at,all\n"), 96, 96); err == nil {
		t.Fatal("garbage line must error")
	}
}

// TestMetricsEdgeCases tables the degenerate inputs the GOT-10k metrics
// must survive: empty IoU sets (a submission of one-frame clips), single
// observations, and exact-threshold boundaries (SR counts strict
// exceedance, so IoU == threshold does not succeed).
func TestMetricsEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		ious   []float64
		wantAO float64
		sr     map[float64]float64
	}{
		{
			name:   "empty set",
			ious:   nil,
			wantAO: 0,
			sr:     map[float64]float64{0: 0, 0.5: 0, 0.75: 0},
		},
		{
			name:   "single frame",
			ious:   []float64{0.6},
			wantAO: 0.6,
			sr:     map[float64]float64{0.5: 1, 0.75: 0},
		},
		{
			name:   "exact threshold is not a success",
			ious:   []float64{0.5, 0.5},
			wantAO: 0.5,
			sr:     map[float64]float64{0.5: 0, 0.49: 1},
		},
		{
			name:   "all zeros",
			ious:   []float64{0, 0, 0},
			wantAO: 0,
			sr:     map[float64]float64{0: 0, 0.5: 0},
		},
		{
			name:   "perfect tracking",
			ious:   []float64{1, 1},
			wantAO: 1,
			sr:     map[float64]float64{0.5: 1, 0.75: 1, 0.99: 1},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := AO(c.ious); math.Abs(got-c.wantAO) > 1e-12 {
				t.Fatalf("AO = %v, want %v", got, c.wantAO)
			}
			for th, want := range c.sr {
				if got := SR(c.ious, th); math.Abs(got-want) > 1e-12 {
					t.Fatalf("SR@%v = %v, want %v", th, got, want)
				}
			}
		})
	}
}

// TestSuccessCurveEdgeCases: the curve and its AUC must behave on empty
// inputs and degenerate grid sizes.
func TestSuccessCurveEdgeCases(t *testing.T) {
	if c := SuccessCurve(nil, 10); len(c) != 10 {
		t.Fatalf("curve length %d, want 10", len(c))
	} else {
		for i, v := range c {
			if v != 0 {
				t.Fatalf("empty input curve[%d] = %v", i, v)
			}
		}
	}
	// n <= 0 selects the default 21-point grid.
	if c := SuccessCurve([]float64{0.5}, 0); len(c) != 21 {
		t.Fatalf("default grid %d, want 21", len(c))
	}
	if AUC(nil) != 0 {
		t.Fatal("AUC of an empty curve must be 0")
	}
	// A single-frame sequence still yields the AUC ≈ AO identity.
	single := []float64{0.37}
	if auc := AUC(SuccessCurve(single, 2000)); math.Abs(auc-AO(single)) > 0.01 {
		t.Fatalf("AUC %v far from AO %v on a single frame", auc, AO(single))
	}
}
