package dataset

import (
	"fmt"
	"io"
	"strings"

	"skynet/internal/detect"
	"skynet/internal/tensor"
)

// DrawBox overlays a one-pixel box outline on a [3,H,W] image in place,
// with the given RGB color. Used to visualize predictions for the paper's
// Figure 7 / Figure 8 qualitative panels.
func DrawBox(img *tensor.Tensor, b detect.Box, r, g, bl float32) {
	h, w := img.Dim(1), img.Dim(2)
	x1, y1, x2, y2 := b.Corners()
	px1, py1 := clampInt(int(x1*float64(w)), 0, w-1), clampInt(int(y1*float64(h)), 0, h-1)
	px2, py2 := clampInt(int(x2*float64(w)), 0, w-1), clampInt(int(y2*float64(h)), 0, h-1)
	set := func(y, x int) {
		img.Set(r, 0, y, x)
		img.Set(g, 1, y, x)
		img.Set(bl, 2, y, x)
	}
	for x := px1; x <= px2; x++ {
		set(py1, x)
		set(py2, x)
	}
	for y := py1; y <= py2; y++ {
		set(y, px1)
		set(y, px2)
	}
}

// WritePPM writes a [3,H,W] image in [0,1] as a binary PPM (P6) file, the
// simplest stdlib-only viewable format.
func WritePPM(w io.Writer, img *tensor.Tensor) error {
	if img.Rank() != 3 || img.Dim(0) != 3 {
		return fmt.Errorf("dataset: WritePPM expects [3,H,W], got %v", img.Shape())
	}
	h, wd := img.Dim(1), img.Dim(2)
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", wd, h); err != nil {
		return err
	}
	buf := make([]byte, 0, h*wd*3)
	for y := 0; y < h; y++ {
		for x := 0; x < wd; x++ {
			for c := 0; c < 3; c++ {
				v := img.At(c, y, x)
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				buf = append(buf, byte(v*255+0.5))
			}
		}
	}
	_, err := w.Write(buf)
	return err
}

// ASCIIRender draws a coarse terminal rendering of the image with the
// ground-truth box marked 'G' and the prediction marked 'P' ('B' where they
// coincide) — the textual stand-in for Figure 7's photo panels.
func ASCIIRender(img *tensor.Tensor, gt, pred detect.Box, cols int) string {
	h, w := img.Dim(1), img.Dim(2)
	if cols <= 0 {
		cols = 48
	}
	rows := cols * h / w / 2 // terminal cells are ~2x taller than wide
	if rows < 1 {
		rows = 1
	}
	shades := []byte(" .:-=+*#%@")
	var sb strings.Builder
	onEdge := func(b detect.Box, fy, fx float64) bool {
		x1, y1, x2, y2 := b.Corners()
		tolX, tolY := 1.0/float64(cols), 1.0/float64(rows)
		inX := fx >= x1-tolX && fx <= x2+tolX
		inY := fy >= y1-tolY && fy <= y2+tolY
		edgeX := abs(fx-x1) < tolX || abs(fx-x2) < tolX
		edgeY := abs(fy-y1) < tolY || abs(fy-y2) < tolY
		return (edgeX && inY) || (edgeY && inX)
	}
	for ry := 0; ry < rows; ry++ {
		fy := (float64(ry) + 0.5) / float64(rows)
		for rx := 0; rx < cols; rx++ {
			fx := (float64(rx) + 0.5) / float64(cols)
			gtE, prE := onEdge(gt, fy, fx), onEdge(pred, fy, fx)
			switch {
			case gtE && prE:
				sb.WriteByte('B')
			case gtE:
				sb.WriteByte('G')
			case prE:
				sb.WriteByte('P')
			default:
				y := clampInt(int(fy*float64(h)), 0, h-1)
				x := clampInt(int(fx*float64(w)), 0, w-1)
				lum := (img.At(0, y, x) + img.At(1, y, x) + img.At(2, y, x)) / 3
				sb.WriteByte(shades[clampInt(int(lum*float32(len(shades))), 0, len(shades)-1)])
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
