package dataset

import (
	"math/rand"

	"skynet/internal/detect"
	"skynet/internal/tensor"
)

// BilinearResize rescales a [C,H,W] image to [C,newH,newW] with bilinear
// interpolation. It implements both the data-augmentation resize of §6.1
// and the input-resize-factor knob of Figure 2(b).
func BilinearResize(img *tensor.Tensor, newH, newW int) *tensor.Tensor {
	return tensor.BilinearResize(img, newH, newW)
}

// Crop extracts the pixel rectangle [y0,y0+ch) × [x0,x0+cw) from a [C,H,W]
// image, clamping out-of-bounds reads to the edge (border replication).
func Crop(img *tensor.Tensor, y0, x0, ch, cw int) *tensor.Tensor {
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	out := tensor.New(c, ch, cw)
	for k := 0; k < c; k++ {
		for y := 0; y < ch; y++ {
			sy := clampInt(y0+y, 0, h-1)
			for x := 0; x < cw; x++ {
				sx := clampInt(x0+x, 0, w-1)
				out.Set(img.At(k, sy, sx), k, y, x)
			}
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Augmentor applies the paper's §6.1 training-time augmentations: distort
// (photometric), jitter + crop (geometric), and resize.
type Augmentor struct {
	// MaxDistort bounds per-channel brightness/contrast perturbation.
	MaxDistort float64
	// MaxJitter is the maximum crop shift as a fraction of the image size.
	MaxJitter float64
	rng       *rand.Rand
}

// NewAugmentor returns an augmentor with the given perturbation bounds.
func NewAugmentor(seed int64, maxDistort, maxJitter float64) *Augmentor {
	return &Augmentor{MaxDistort: maxDistort, MaxJitter: maxJitter,
		rng: rand.New(rand.NewSource(seed))}
}

// Apply returns an augmented copy of the sample: photometric distortion
// followed by a jittered crop that is resized back to the original
// resolution, with the box adjusted accordingly.
func (a *Augmentor) Apply(s detect.Sample) detect.Sample {
	img := s.Image.Clone()
	// Distort: per-channel gain and bias.
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	for ch := 0; ch < c; ch++ {
		gain := 1 + (a.rng.Float64()*2-1)*a.MaxDistort
		bias := (a.rng.Float64()*2 - 1) * a.MaxDistort * 0.5
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				img.Set(clamp01f(float64(img.At(ch, y, x))*gain+bias), ch, y, x)
			}
		}
	}
	// Jitter + crop: shift the viewport by up to MaxJitter, same size.
	dx := int((a.rng.Float64()*2 - 1) * a.MaxJitter * float64(w))
	dy := int((a.rng.Float64()*2 - 1) * a.MaxJitter * float64(h))
	img = Crop(img, dy, dx, h, w)
	box := detect.Box{
		CX: s.Box.CX - float64(dx)/float64(w),
		CY: s.Box.CY - float64(dy)/float64(h),
		W:  s.Box.W, H: s.Box.H,
	}.Clip()
	return detect.Sample{Image: img, Box: box}
}

// ResizeSample rescales a sample to a new resolution (resize-factor
// experiments); the normalized box is resolution independent and unchanged.
func ResizeSample(s detect.Sample, newH, newW int) detect.Sample {
	return detect.Sample{Image: BilinearResize(s.Image, newH, newW), Box: s.Box}
}
