package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"skynet/internal/detect"
	"skynet/internal/tensor"
)

func TestSampleAreaRatioMatchesFigure6(t *testing.T) {
	// Figure 6: 31% of boxes under 1% of the image area, 91% under 9%.
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	var under1, under9 int
	for i := 0; i < n; i++ {
		r := SampleAreaRatio(rng)
		if r < 0.01 {
			under1++
		}
		if r < 0.09 {
			under9++
		}
		if r <= 0 || r > 0.5 {
			t.Fatalf("area ratio %v out of range", r)
		}
	}
	p1 := float64(under1) / n
	p9 := float64(under9) / n
	if math.Abs(p1-0.31) > 0.02 {
		t.Fatalf("P(area<1%%) = %v, want ≈ 0.31", p1)
	}
	if math.Abs(p9-0.91) > 0.02 {
		t.Fatalf("P(area<9%%) = %v, want ≈ 0.91", p9)
	}
}

func TestSceneBasics(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	s := g.Scene()
	if s.Image.Dim(0) != 3 || s.Image.Dim(1) != 48 || s.Image.Dim(2) != 96 {
		t.Fatalf("image shape %v", s.Image.Shape())
	}
	if s.Image.Min() < 0 || s.Image.Max() > 1 {
		t.Fatalf("pixel range [%v, %v] outside [0,1]", s.Image.Min(), s.Image.Max())
	}
	if s.Category < 0 || s.Category >= NumCategories {
		t.Fatalf("category %d", s.Category)
	}
	if s.SubCategory < 0 || s.SubCategory >= NumSubCategories {
		t.Fatalf("subcategory %d", s.SubCategory)
	}
	x1, y1, x2, y2 := s.Box.Corners()
	if x1 < -1e-9 || y1 < -1e-9 || x2 > 1+1e-9 || y2 > 1+1e-9 {
		t.Fatalf("box out of image: %+v", s.Box)
	}
}

func TestSceneMaskInsideBox(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	for trial := 0; trial < 20; trial++ {
		s := g.Scene()
		h, w := 48, 96
		x1, y1, x2, y2 := s.Box.Corners()
		var any bool
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if s.Mask.At(0, y, x) == 0 {
					continue
				}
				any = true
				fx, fy := (float64(x)+0.5)/float64(w), (float64(y)+0.5)/float64(h)
				if fx < x1-0.02 || fx > x2+0.02 || fy < y1-0.02 || fy > y2+0.02 {
					t.Fatalf("mask pixel (%d,%d) outside box %+v", x, y, s.Box)
				}
			}
		}
		if !any {
			t.Fatalf("empty mask for box %+v", s.Box)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a := NewGenerator(cfg).Scene()
	b := NewGenerator(cfg).Scene()
	if a.Box != b.Box || a.Category != b.Category {
		t.Fatal("generator must be deterministic from its seed")
	}
	for i := range a.Image.Data {
		if a.Image.Data[i] != b.Image.Data[i] {
			t.Fatal("image data differs across equal seeds")
		}
	}
}

func TestDetectionSetAndClassificationSet(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	det := g.DetectionSet(5)
	if len(det) != 5 {
		t.Fatalf("got %d detection samples", len(det))
	}
	imgs, labels := g.ClassificationSet(6)
	if len(imgs) != 6 || len(labels) != 6 {
		t.Fatal("classification set sizes wrong")
	}
	for _, l := range labels {
		if l < 0 || l >= NumCategories {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestCategoriesAreVisuallyDistinct(t *testing.T) {
	// Different categories must produce different silhouettes: compare
	// shape membership grids.
	grid := func(cat int) string {
		var sb strings.Builder
		for y := 0; y < 12; y++ {
			for x := 0; x < 12; x++ {
				if inShape(cat, (float64(x)+0.5)/12, (float64(y)+0.5)/12) {
					sb.WriteByte('#')
				} else {
					sb.WriteByte('.')
				}
			}
		}
		return sb.String()
	}
	seen := map[string]int{}
	for c := 0; c < NumCategories; c++ {
		g := grid(c)
		if prev, dup := seen[g]; dup {
			t.Fatalf("categories %d and %d have identical silhouettes", prev, c)
		}
		seen[g] = c
	}
}

func TestSubAppearanceStable(t *testing.T) {
	c1, f1, a1 := subAppearance(3, 42)
	c2, f2, a2 := subAppearance(3, 42)
	if c1 != c2 || f1 != f2 || a1 != a2 {
		t.Fatal("sub-category appearance must be deterministic")
	}
	c3, _, _ := subAppearance(3, 43)
	if c1 == c3 {
		t.Fatal("adjacent sub-categories should differ in color")
	}
}

func TestBilinearResizeIdentity(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	s := g.Scene()
	r := BilinearResize(s.Image, 48, 96)
	for i := range s.Image.Data {
		if r.Data[i] != s.Image.Data[i] {
			t.Fatal("identity resize must preserve pixels")
		}
	}
}

func TestBilinearResizeConstant(t *testing.T) {
	img := tensor.New(3, 8, 8)
	img.Fill(0.5)
	r := BilinearResize(img, 5, 13)
	if r.Dim(1) != 5 || r.Dim(2) != 13 {
		t.Fatalf("resize shape %v", r.Shape())
	}
	for _, v := range r.Data {
		if math.Abs(float64(v)-0.5) > 1e-6 {
			t.Fatalf("constant image must stay constant, got %v", v)
		}
	}
}

// Property: resizing never exceeds the input's value range (bilinear is a
// convex combination).
func TestQuickResizeRangeBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		img := tensor.New(1, 4+rng.Intn(8), 4+rng.Intn(8))
		img.RandUniform(rng, 0, 1)
		r := BilinearResize(img, 3+rng.Intn(10), 3+rng.Intn(10))
		return r.Min() >= img.Min()-1e-6 && r.Max() <= img.Max()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCropValuesAndBorderReplication(t *testing.T) {
	img := tensor.FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	c := Crop(img, 1, 1, 2, 2)
	want := []float32{5, 6, 8, 9}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("crop got %v, want %v", c.Data, want)
		}
	}
	// Negative offset replicates the border.
	c2 := Crop(img, -1, -1, 2, 2)
	if c2.At(0, 0, 0) != 1 || c2.At(0, 1, 1) != 1 {
		t.Fatalf("border replication wrong: %v", c2.Data)
	}
}

func TestAugmentorKeepsBoxConsistent(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	aug := NewAugmentor(7, 0.2, 0.1)
	for trial := 0; trial < 10; trial++ {
		s := g.Scene()
		out := aug.Apply(detect.Sample{Image: s.Image, Box: s.Box})
		if !out.Image.SameShape(s.Image) {
			t.Fatal("augmentation must preserve resolution")
		}
		x1, y1, x2, y2 := out.Box.Corners()
		if x1 < -1e-9 || y1 < -1e-9 || x2 > 1+1e-9 || y2 > 1+1e-9 {
			t.Fatalf("augmented box out of image: %+v", out.Box)
		}
		// The jitter bound guarantees the box cannot move more than
		// MaxJitter (plus clipping effects).
		if math.Abs(out.Box.CX-s.Box.CX) > 0.1+s.Box.W/2+1e-9 {
			t.Fatalf("box moved too far: %v -> %v", s.Box.CX, out.Box.CX)
		}
	}
}

func TestSequenceGeneration(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	cfg := DefaultSequenceConfig()
	seq := g.Sequence(cfg)
	if seq.Len() != cfg.Length {
		t.Fatalf("sequence length %d, want %d", seq.Len(), cfg.Length)
	}
	if len(seq.Boxes) != cfg.Length || len(seq.Masks) != cfg.Length {
		t.Fatal("boxes/masks length mismatch")
	}
	// Motion continuity: per-frame displacement bounded by ~2*MaxStep.
	for i := 1; i < seq.Len(); i++ {
		d := math.Hypot(seq.Boxes[i].CX-seq.Boxes[i-1].CX, seq.Boxes[i].CY-seq.Boxes[i-1].CY)
		if d > 3*cfg.MaxStep {
			t.Fatalf("frame %d jumped %v (> 3*MaxStep)", i, d)
		}
	}
	// The object must actually move over the clip.
	total := math.Hypot(seq.Boxes[seq.Len()-1].CX-seq.Boxes[0].CX,
		seq.Boxes[seq.Len()-1].CY-seq.Boxes[0].CY)
	var maxD float64
	for i := range seq.Boxes {
		d := math.Hypot(seq.Boxes[i].CX-seq.Boxes[0].CX, seq.Boxes[i].CY-seq.Boxes[0].CY)
		if d > maxD {
			maxD = d
		}
	}
	if total == 0 && maxD == 0 {
		t.Fatal("object never moved")
	}
	// Boxes stay inside the image.
	for i, b := range seq.Boxes {
		x1, y1, x2, y2 := b.Corners()
		if x1 < -1e-6 || y1 < -1e-6 || x2 > 1+1e-6 || y2 > 1+1e-6 {
			t.Fatalf("frame %d box out of bounds: %+v", i, b)
		}
	}
}

func TestSequencesCount(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	seqs := g.Sequences(3, SequenceConfig{Length: 4})
	if len(seqs) != 3 || seqs[2].Len() != 4 {
		t.Fatal("Sequences wrong shape")
	}
}

func TestDrawBoxMarksEdges(t *testing.T) {
	img := tensor.New(3, 10, 10)
	DrawBox(img, detect.Box{CX: 0.5, CY: 0.5, W: 0.4, H: 0.4}, 1, 0, 0)
	if img.At(0, 3, 5) != 1 {
		t.Fatal("top edge not drawn")
	}
	if img.At(0, 5, 5) != 0 {
		t.Fatal("interior must stay untouched")
	}
}

func TestWritePPM(t *testing.T) {
	img := tensor.New(3, 4, 5)
	img.Fill(0.5)
	var buf bytes.Buffer
	if err := WritePPM(&buf, img); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P6\n5 4\n255\n") {
		t.Fatalf("bad PPM header: %q", buf.String()[:12])
	}
	if buf.Len() != len("P6\n5 4\n255\n")+4*5*3 {
		t.Fatalf("PPM payload size %d", buf.Len())
	}
	if err := WritePPM(&buf, tensor.New(1, 2, 2)); err == nil {
		t.Fatal("WritePPM must reject non-RGB input")
	}
}

func TestASCIIRenderShowsBoxes(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	s := g.Scene()
	out := ASCIIRender(s.Image, s.Box, s.Box, 48)
	if !strings.Contains(out, "B") {
		t.Fatal("coincident boxes must render as 'B'")
	}
	out2 := ASCIIRender(s.Image, detect.Box{CX: 0.2, CY: 0.5, W: 0.2, H: 0.4},
		detect.Box{CX: 0.8, CY: 0.5, W: 0.2, H: 0.4}, 48)
	if !strings.Contains(out2, "G") || !strings.Contains(out2, "P") {
		t.Fatal("distinct boxes must render as 'G' and 'P'")
	}
}

func TestCategoryName(t *testing.T) {
	if CategoryName(0) == "" || CategoryName(11) == "" {
		t.Fatal("category names must be non-empty")
	}
	if CategoryName(12) != CategoryName(0) {
		t.Fatal("CategoryName must wrap modulo NumCategories")
	}
}

func TestSequenceOcclusion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.W, cfg.H = 96, 96
	cfg.NoiseStd = 0
	g := NewGenerator(cfg)
	sc := DefaultSequenceConfig()
	sc.Length = 30
	sc.OcclusionProb = 1 // occlude every frame
	seq := g.Sequence(sc)
	occluded := 0
	for f := 0; f < seq.Len(); f++ {
		// The mask under the GT box must have fewer object pixels than an
		// unoccluded rendering would produce.
		var maskPixels float64
		for _, v := range seq.Masks[f].Data {
			maskPixels += float64(v)
		}
		boxPixels := seq.Boxes[f].Area() * float64(96*96)
		if maskPixels < boxPixels*0.8 {
			occluded++
		}
	}
	if occluded < seq.Len()/2 {
		t.Fatalf("only %d/%d frames show occlusion", occluded, seq.Len())
	}
	// Without occlusion the masks stay fuller.
	sc.OcclusionProb = 0
	g2 := NewGenerator(cfg)
	seq2 := g2.Sequence(sc)
	var withOcc, without float64
	for f := 0; f < seq.Len(); f++ {
		for _, v := range seq.Masks[f].Data {
			withOcc += float64(v)
		}
	}
	for f := 0; f < seq2.Len(); f++ {
		for _, v := range seq2.Masks[f].Data {
			without += float64(v)
		}
	}
	if withOcc/float64(seq.Len()) >= without/float64(seq2.Len()) {
		t.Fatal("occlusion must remove mask pixels on average")
	}
}
