package dataset

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPPMRoundTrip(t *testing.T) {
	g := NewGenerator(DefaultConfig())
	s := g.Scene()
	var buf bytes.Buffer
	if err := WritePPM(&buf, s.Image); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.SameShape(s.Image) {
		t.Fatalf("shape %v vs %v", back.Shape(), s.Image.Shape())
	}
	// 8-bit storage quantizes to within 1/255 per channel.
	for i := range s.Image.Data {
		if math.Abs(float64(back.Data[i]-s.Image.Data[i])) > 1.0/255+1e-6 {
			t.Fatalf("pixel %d: %v vs %v", i, back.Data[i], s.Image.Data[i])
		}
	}
}

func TestReadPPMRejectsGarbage(t *testing.T) {
	for name, data := range map[string]string{
		"magic":     "P5\n2 2\n255\n....",
		"truncated": "P6\n4 4\n255\nxx",
		"dims":      "P6\n0 2\n255\n",
		"maxval":    "P6\n2 2\n70000\n",
	} {
		if _, err := ReadPPM(strings.NewReader(data)); err == nil {
			t.Errorf("%s: bad PPM accepted", name)
		}
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := NewGenerator(DefaultConfig())
	samples := g.DetectionSet(4)
	if err := Export(dir, samples); err != nil {
		t.Fatal(err)
	}
	back, err := Import(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(samples) {
		t.Fatalf("imported %d samples, want %d", len(back), len(samples))
	}
	for i := range samples {
		if math.Abs(back[i].Box.CX-samples[i].Box.CX) > 1e-9 {
			t.Fatalf("sample %d box drifted", i)
		}
		if !back[i].Image.SameShape(samples[i].Image) {
			t.Fatalf("sample %d image shape changed", i)
		}
	}
}

func TestImportRejectsInvalidBox(t *testing.T) {
	dir := t.TempDir()
	bad := `{"items":[{"image":"x.ppm","cx":0.5,"cy":0.5,"w":-1,"h":0.1}]}`
	if err := os.WriteFile(filepath.Join(dir, "annotations.json"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Import(dir); err == nil {
		t.Fatal("negative box size must be rejected")
	}
}

func TestImportMissingImage(t *testing.T) {
	dir := t.TempDir()
	ann := `{"items":[{"image":"missing.ppm","cx":0.5,"cy":0.5,"w":0.1,"h":0.1}]}`
	if err := os.WriteFile(filepath.Join(dir, "annotations.json"), []byte(ann), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Import(dir); err == nil {
		t.Fatal("missing image must be reported")
	}
}
