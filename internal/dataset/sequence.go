package dataset

import (
	"math"

	"skynet/internal/detect"
	"skynet/internal/tensor"
)

// Sequence is a GOT-10k-style tracking clip: one object moving through a
// static-background scene, with a ground-truth box and segmentation mask
// per frame. Masks stand in for the Youtube-VOS supervision SiamMask needs.
type Sequence struct {
	Frames []*tensor.Tensor // each [3,H,W]
	Boxes  []detect.Box
	Masks  []*tensor.Tensor // each [1,H,W]
	// Category identifies the tracked object's appearance.
	Category, SubCategory int
}

// Len returns the number of frames.
func (s Sequence) Len() int { return len(s.Frames) }

// SequenceConfig controls clip generation.
type SequenceConfig struct {
	Length int
	// MaxStep is the per-frame object displacement bound as a fraction of
	// the image size.
	MaxStep float64
	// ScaleDrift is the per-frame multiplicative size drift bound.
	ScaleDrift float64
	// OcclusionProb is the per-frame probability that a foreground
	// occluder partially covers the target — one of GOT-10k's "in the
	// wild" challenges. Occluded pixels are removed from the frame's mask;
	// the ground-truth box is unchanged (the benchmark convention).
	OcclusionProb float64
}

// DefaultSequenceConfig matches moderate GOT-10k-like motion.
func DefaultSequenceConfig() SequenceConfig {
	return SequenceConfig{Length: 20, MaxStep: 0.03, ScaleDrift: 0.02}
}

// Sequence generates one tracking clip. The object follows a smooth
// random walk with velocity damping and slowly drifting scale; clutter
// objects stay fixed, emulating a static camera over moving targets.
func (g *Generator) Sequence(cfg SequenceConfig) Sequence {
	if cfg.Length <= 0 {
		cfg.Length = 20
	}
	cat := g.rng.Intn(NumCategories)
	sub := g.rng.Intn(NumSubCategories)
	// Track a medium-sized object so even heavily-scaled-down backbones
	// keep a few feature cells on it.
	box := detect.Box{
		CX: 0.3 + 0.4*g.rng.Float64(),
		CY: 0.3 + 0.4*g.rng.Float64(),
		W:  0.12 + 0.1*g.rng.Float64(),
		H:  0.12 + 0.1*g.rng.Float64(),
	}
	// Pre-render the static background with clutter once.
	bg := tensor.New(3, g.cfg.H, g.cfg.W)
	g.paintBackground(bg)
	nClutter := poissonish(g.rng, g.cfg.Clutter)
	for i := 0; i < nClutter; i++ {
		g.paintDistractor(bg, g.sampleBox(), g.rng.Intn(NumCategories), g.rng.Intn(NumSubCategories))
	}
	seq := Sequence{Category: cat, SubCategory: sub}
	vx := (g.rng.Float64()*2 - 1) * cfg.MaxStep
	vy := (g.rng.Float64()*2 - 1) * cfg.MaxStep
	for f := 0; f < cfg.Length; f++ {
		frame := bg.Clone()
		mask := tensor.New(1, g.cfg.H, g.cfg.W)
		g.paintObject(frame, mask, box, cat, sub)
		if cfg.OcclusionProb > 0 && g.rng.Float64() < cfg.OcclusionProb {
			g.paintOccluder(frame, mask, box)
		}
		g.addNoise(frame)
		seq.Frames = append(seq.Frames, frame)
		seq.Boxes = append(seq.Boxes, box)
		seq.Masks = append(seq.Masks, mask)
		// Advance motion: damped random-walk velocity, bounce at edges.
		vx = 0.9*vx + 0.1*(g.rng.Float64()*2-1)*cfg.MaxStep
		vy = 0.9*vy + 0.1*(g.rng.Float64()*2-1)*cfg.MaxStep
		box.CX += vx
		box.CY += vy
		if box.CX < box.W/2 || box.CX > 1-box.W/2 {
			vx = -vx
			box.CX = math.Max(box.W/2, math.Min(1-box.W/2, box.CX))
		}
		if box.CY < box.H/2 || box.CY > 1-box.H/2 {
			vy = -vy
			box.CY = math.Max(box.H/2, math.Min(1-box.H/2, box.CY))
		}
		scale := 1 + (g.rng.Float64()*2-1)*cfg.ScaleDrift
		box.W = math.Min(0.5, math.Max(0.05, box.W*scale))
		box.H = math.Min(0.5, math.Max(0.05, box.H*scale))
	}
	return seq
}

// paintOccluder draws a flat gray bar across part of the target box,
// clearing the mask where it covers the object.
func (g *Generator) paintOccluder(frame, mask *tensor.Tensor, box detect.Box) {
	h, w := frame.Dim(1), frame.Dim(2)
	// A vertical or horizontal bar over ~40% of the box.
	vertical := g.rng.Float64() < 0.5
	ob := box
	if vertical {
		ob.W = box.W * 0.4
		ob.CX = box.CX + (g.rng.Float64()-0.5)*box.W*0.6
		ob.H = box.H * 1.4
	} else {
		ob.H = box.H * 0.4
		ob.CY = box.CY + (g.rng.Float64()-0.5)*box.H*0.6
		ob.W = box.W * 1.4
	}
	ob = ob.Clip()
	x1, y1, x2, y2 := ob.Corners()
	shade := float32(0.3 + 0.2*g.rng.Float64())
	for y := int(y1 * float64(h)); y < int(math.Ceil(y2*float64(h))); y++ {
		for x := int(x1 * float64(w)); x < int(math.Ceil(x2*float64(w))); x++ {
			if y < 0 || y >= h || x < 0 || x >= w {
				continue
			}
			for c := 0; c < 3; c++ {
				frame.Set(shade, c, y, x)
			}
			mask.Set(0, 0, y, x)
		}
	}
}

// Sequences generates n clips.
func (g *Generator) Sequences(n int, cfg SequenceConfig) []Sequence {
	out := make([]Sequence, n)
	for i := range out {
		out[i] = g.Sequence(cfg)
	}
	return out
}
