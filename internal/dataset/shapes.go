package dataset

import (
	"math"

	"skynet/internal/detect"
	"skynet/internal/tensor"
)

// Category shapes: each of the 12 DAC-SDC-like main categories maps to a
// distinct silhouette; the 95 sub-categories modulate color and texture.
// The names are purely descriptive — what matters is that categories are
// visually separable and sub-categories of one category look similar
// (the "multiple similar objects" challenge of Figure 7).
var categoryNames = [NumCategories]string{
	"car", "truck", "boat", "person", "rider", "drone",
	"building", "horse", "paraglider", "wagon", "whale", "bird",
}

// CategoryName returns a descriptive name for a category index.
func CategoryName(cat int) string { return categoryNames[cat%NumCategories] }

// inShape reports whether the normalized in-box coordinates (u,v) ∈ [0,1]²
// fall inside the silhouette of the given category.
func inShape(cat int, u, v float64) bool {
	du, dv := u-0.5, v-0.5
	switch cat % NumCategories {
	case 0: // filled rectangle
		return true
	case 1: // rectangle with cab notch
		return !(u > 0.7 && v < 0.35)
	case 2: // hull: triangle-bottomed
		return v < 0.5 || math.Abs(du) < 0.5-(v-0.5)
	case 3: // ellipse
		return du*du/0.25+dv*dv/0.25 <= 1
	case 4: // two stacked ellipses (rider)
		return du*du/0.09+(v-0.3)*(v-0.3)/0.04 <= 1 || du*du/0.16+(v-0.7)*(v-0.7)/0.09 <= 1
	case 5: // cross / quadcopter
		return math.Abs(du) < 0.15 || math.Abs(dv) < 0.15
	case 6: // frame (hollow rectangle)
		return math.Abs(du) > 0.3 || math.Abs(dv) > 0.3
	case 7: // diamond
		return math.Abs(du)+math.Abs(dv) <= 0.5
	case 8: // chevron
		return math.Abs(dv-(0.25-math.Abs(du))) < 0.18
	case 9: // horizontal bar
		return math.Abs(dv) < 0.2
	case 10: // lens (intersection of two discs)
		return du*du+(dv-0.25)*(dv-0.25) <= 0.3 && du*du+(dv+0.25)*(dv+0.25) <= 0.3
	case 11: // ring
		r2 := du*du + dv*dv
		return r2 <= 0.25 && r2 >= 0.06
	}
	return true
}

// subAppearance derives the deterministic color and texture parameters of
// a sub-category.
func subAppearance(cat, sub int) (color [3]float64, stripeFreq float64, stripeAxis bool) {
	// Simple integer hash so appearance is stable across runs.
	h := uint32(cat*131 + sub*2654435761)
	h ^= h >> 13
	h *= 2246822519
	h ^= h >> 16
	color[0] = 0.4 + 0.6*float64(h&0xFF)/255
	color[1] = 0.4 + 0.6*float64((h>>8)&0xFF)/255
	color[2] = 0.4 + 0.6*float64((h>>16)&0xFF)/255
	// Make one channel dark so objects contrast with the mid-gray ground.
	color[int(h>>24)%3] *= 0.25
	stripeFreq = float64(2 + int(h>>5)%4)
	stripeAxis = (h>>9)&1 == 1
	return
}

// paintObject renders the category silhouette into img within box; if mask
// is non-nil it receives 1 at every painted pixel.
func (g *Generator) paintObject(img, mask *tensor.Tensor, box detect.Box, cat, sub int) {
	g.paint(img, mask, box, cat, sub, false)
}

// paintDistractor renders a background object: the same silhouettes, but
// desaturated toward the terrain tones so the target of interest remains
// identifiable — the DAC-SDC target is a specific, visually distinctive
// object, while other scene objects merely add clutter (Figure 7).
func (g *Generator) paintDistractor(img *tensor.Tensor, box detect.Box, cat, sub int) {
	g.paint(img, nil, box, cat, sub, true)
}

func (g *Generator) paint(img, mask *tensor.Tensor, box detect.Box, cat, sub int, muted bool) {
	h, w := img.Dim(1), img.Dim(2)
	x1, y1, x2, y2 := box.Corners()
	px1, py1 := int(x1*float64(w)), int(y1*float64(h))
	px2, py2 := int(math.Ceil(x2*float64(w))), int(math.Ceil(y2*float64(h)))
	if px1 < 0 {
		px1 = 0
	}
	if py1 < 0 {
		py1 = 0
	}
	if px2 > w {
		px2 = w
	}
	if py2 > h {
		py2 = h
	}
	if px2 <= px1 || py2 <= py1 {
		return
	}
	color, stripeFreq, stripeAxis := subAppearance(cat, sub)
	if muted {
		// Blend toward mid-gray: structure without target-like saliency.
		for c := range color {
			color[c] = 0.35 + 0.25*(color[c]-0.35)
		}
	}
	for y := py1; y < py2; y++ {
		v := (float64(y) + 0.5 - y1*float64(h)) / (float64(py2 - py1))
		for x := px1; x < px2; x++ {
			u := (float64(x) + 0.5 - x1*float64(w)) / (float64(px2 - px1))
			if !inShape(cat, u, v) {
				continue
			}
			shade := 1.0
			t := u
			if stripeAxis {
				t = v
			}
			if math.Sin(t*stripeFreq*math.Pi) < 0 {
				shade = 0.75
			}
			for c := 0; c < 3; c++ {
				img.Set(clamp01f(color[c]*shade), c, y, x)
			}
			if mask != nil {
				mask.Set(1, 0, y, x)
			}
		}
	}
}
