package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"skynet/internal/detect"
	"skynet/internal/tensor"
)

// This file is the real-data path: users with actual UAV footage can
// export/import annotation sets as JSON (one record per image, DAC-SDC
// style single-object boxes) with images as PPM files, and feed them to
// the same training APIs the synthetic generator drives.

// Annotation is one image's ground truth in an annotation file.
type Annotation struct {
	// Image is the PPM file path, relative to the annotation file.
	Image string `json:"image"`
	// Normalized center-format box.
	CX float64 `json:"cx"`
	CY float64 `json:"cy"`
	W  float64 `json:"w"`
	H  float64 `json:"h"`
	// Optional category label.
	Category int `json:"category,omitempty"`
}

// AnnotationSet is the on-disk dataset description.
type AnnotationSet struct {
	// Description is free-form provenance text.
	Description string       `json:"description,omitempty"`
	Items       []Annotation `json:"items"`
}

// ReadPPM parses a binary PPM (P6) image into a [3,H,W] tensor in [0,1] —
// the inverse of WritePPM.
func ReadPPM(r io.Reader) (*tensor.Tensor, error) {
	br := bufio.NewReader(r)
	var magic string
	var w, h, maxv int
	if _, err := fmt.Fscan(br, &magic, &w, &h, &maxv); err != nil {
		return nil, fmt.Errorf("dataset: parsing PPM header: %w", err)
	}
	if magic != "P6" {
		return nil, fmt.Errorf("dataset: unsupported PPM magic %q", magic)
	}
	if w <= 0 || h <= 0 || maxv <= 0 || maxv > 255 {
		return nil, fmt.Errorf("dataset: bad PPM dimensions %dx%d max %d", w, h, maxv)
	}
	// Exactly one whitespace byte separates the header from pixel data.
	if _, err := br.ReadByte(); err != nil {
		return nil, err
	}
	buf := make([]byte, w*h*3)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("dataset: reading PPM pixels: %w", err)
	}
	img := tensor.New(3, h, w)
	scale := 1 / float32(maxv)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			base := (y*w + x) * 3
			for c := 0; c < 3; c++ {
				img.Set(float32(buf[base+c])*scale, c, y, x)
			}
		}
	}
	return img, nil
}

// ReadPPMFile reads a PPM image from the named file.
func ReadPPMFile(path string) (*tensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPPM(f)
}

// Export writes samples as an annotation JSON plus one PPM per image in
// dir. The annotation file is dir/annotations.json.
func Export(dir string, samples []detect.Sample) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	set := AnnotationSet{Description: "exported by skynet/internal/dataset"}
	for i, s := range samples {
		name := fmt.Sprintf("img%05d.ppm", i)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := WritePPM(f, s.Image); err != nil {
			_ = f.Close() // best-effort cleanup; the write error is the one to report
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		set.Items = append(set.Items, Annotation{
			Image: name, CX: s.Box.CX, CY: s.Box.CY, W: s.Box.W, H: s.Box.H,
		})
	}
	b, err := json.MarshalIndent(set, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "annotations.json"), append(b, '\n'), 0o644)
}

// Import loads an annotation set written by Export (or hand-authored in
// the same format) back into detection samples.
func Import(dir string) ([]detect.Sample, error) {
	b, err := os.ReadFile(filepath.Join(dir, "annotations.json"))
	if err != nil {
		return nil, err
	}
	var set AnnotationSet
	if err := json.Unmarshal(b, &set); err != nil {
		return nil, fmt.Errorf("dataset: parsing annotations: %w", err)
	}
	samples := make([]detect.Sample, 0, len(set.Items))
	for i, a := range set.Items {
		if a.W <= 0 || a.H <= 0 || a.CX < 0 || a.CX > 1 || a.CY < 0 || a.CY > 1 {
			return nil, fmt.Errorf("dataset: annotation %d has an invalid box", i)
		}
		img, err := ReadPPMFile(filepath.Join(dir, a.Image))
		if err != nil {
			return nil, fmt.Errorf("dataset: annotation %d: %w", i, err)
		}
		samples = append(samples, detect.Sample{
			Image: img,
			Box:   detect.Box{CX: a.CX, CY: a.CY, W: a.W, H: a.H},
		})
	}
	return samples, nil
}
