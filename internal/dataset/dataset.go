// Package dataset procedurally generates the data the paper's experiments
// consume. The real DAC-SDC dataset (100k UAV images from DJI, hidden 50k
// test set) and GOT-10k videos are not redistributable, so this package
// synthesizes scenes with the properties the paper's design decisions rely
// on: a single object of interest per image, 12 main categories and 95
// sub-categories of object appearance, and — crucially — the bounding-box
// relative-size distribution of Figure 6 (91% of objects below 9% of the
// image area, 31% below 1%), which motivates SkyNet's bypass + reordering
// features for small-object detection.
//
// The generator is fully deterministic from its seed.
package dataset

import (
	"math"
	"math/rand"

	"skynet/internal/detect"
	"skynet/internal/tensor"
)

// Dataset cardinalities matching the DAC-SDC description (§6).
const (
	NumCategories    = 12
	NumSubCategories = 95
)

// Config parameterizes a Generator.
type Config struct {
	W, H int // image width and height in pixels
	// Clutter is the expected number of background distractor shapes per
	// image; the first row of the paper's Figure 7 highlights distinguishing
	// the target from similar objects.
	Clutter float64
	// NoiseStd is the additive pixel noise level.
	NoiseStd float64
	Seed     int64
}

// DefaultConfig returns a small-resolution configuration suitable for
// CPU-only training; the aspect ratio (width ≈ 2×height) follows the
// paper's 160×320 input.
func DefaultConfig() Config {
	return Config{W: 96, H: 48, Clutter: 2, NoiseStd: 0.03, Seed: 1}
}

// Scene is one generated image with its ground truth.
type Scene struct {
	Image       *tensor.Tensor // [3,H,W] in [0,1]
	Box         detect.Box
	Mask        *tensor.Tensor // [1,H,W] object mask in {0,1}
	Category    int
	SubCategory int
}

// Generator produces synthetic UAV-view scenes.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// NewGenerator returns a generator for the given configuration.
func NewGenerator(cfg Config) *Generator {
	if cfg.W <= 0 || cfg.H <= 0 {
		panic("dataset: non-positive image size")
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// SampleAreaRatio draws a bounding-box-to-image area ratio from the
// Figure 6 distribution: a three-segment log-uniform mixture calibrated so
// that P(ratio < 1%) = 0.31 and P(ratio < 9%) = 0.91.
func SampleAreaRatio(rng *rand.Rand) float64 {
	u := rng.Float64()
	var lo, hi float64
	switch {
	case u < 0.31:
		lo, hi = 0.0004, 0.01
	case u < 0.91:
		lo, hi = 0.01, 0.09
	default:
		lo, hi = 0.09, 0.36
	}
	return logUniform(rng, lo, hi)
}

func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
}

// sampleBox draws a ground-truth box: area from the Figure 6 law, aspect
// ratio in [0.5, 2], position uniform with the box fully inside the image.
func (g *Generator) sampleBox() detect.Box {
	area := SampleAreaRatio(g.rng)
	aspect := logUniform(g.rng, 0.5, 2.0)
	w := math.Sqrt(area * aspect)
	h := math.Sqrt(area / aspect)
	if w > 0.9 {
		w = 0.9
	}
	if h > 0.9 {
		h = 0.9
	}
	// Keep at least 2x2 pixels so the object is renderable.
	minW := 2.0 / float64(g.cfg.W)
	minH := 2.0 / float64(g.cfg.H)
	if w < minW {
		w = minW
	}
	if h < minH {
		h = minH
	}
	cx := w/2 + g.rng.Float64()*(1-w)
	cy := h/2 + g.rng.Float64()*(1-h)
	return detect.Box{CX: cx, CY: cy, W: w, H: h}
}

// Scene generates one image with a single target object plus clutter.
func (g *Generator) Scene() Scene {
	cat := g.rng.Intn(NumCategories)
	sub := g.rng.Intn(NumSubCategories)
	box := g.sampleBox()
	img := tensor.New(3, g.cfg.H, g.cfg.W)
	mask := tensor.New(1, g.cfg.H, g.cfg.W)
	g.paintBackground(img)
	// Distractors: same renderer, different category, no ground truth.
	nClutter := poissonish(g.rng, g.cfg.Clutter)
	for i := 0; i < nClutter; i++ {
		dcat := g.rng.Intn(NumCategories)
		dsub := g.rng.Intn(NumSubCategories)
		g.paintDistractor(img, g.sampleBox(), dcat, dsub)
	}
	g.paintObject(img, mask, box, cat, sub)
	g.addNoise(img)
	return Scene{Image: img, Box: box, Mask: mask, Category: cat, SubCategory: sub}
}

// DetectionSet generates n detection samples.
func (g *Generator) DetectionSet(n int) []detect.Sample {
	out := make([]detect.Sample, n)
	for i := range out {
		s := g.Scene()
		out[i] = detect.Sample{Image: s.Image, Box: s.Box}
	}
	return out
}

// ClassificationSet generates n category-labelled images for the
// classification baselines (Figure 2(a)'s AlexNet-style model). The object
// is rendered large (area ≥ 4% of the image) so category appearance is the
// dominant signal, and sub-category diversity is capped at 16 per category
// so small CPU-budget models can generalize across appearance variants.
func (g *Generator) ClassificationSet(n int) ([]*tensor.Tensor, []int) {
	imgs := make([]*tensor.Tensor, n)
	labels := make([]int, n)
	for i := range imgs {
		cat := g.rng.Intn(NumCategories)
		sub := g.rng.Intn(16)
		box := detect.Box{
			CX: 0.3 + 0.4*g.rng.Float64(),
			CY: 0.3 + 0.4*g.rng.Float64(),
			W:  0.3 + 0.3*g.rng.Float64(),
			H:  0.3 + 0.3*g.rng.Float64(),
		}
		img := tensor.New(3, g.cfg.H, g.cfg.W)
		g.paintBackground(img)
		g.paintObject(img, nil, box, cat, sub)
		g.addNoise(img)
		imgs[i] = img
		labels[i] = cat
	}
	return imgs, labels
}

func poissonish(rng *rand.Rand, mean float64) int {
	// Cheap Poisson approximation: round(mean + noise), clamped at 0.
	n := int(mean + rng.NormFloat64()*math.Sqrt(mean+1e-9) + 0.5)
	if n < 0 {
		return 0
	}
	return n
}

// paintBackground fills img with a smooth low-frequency field resembling
// terrain seen from a UAV.
func (g *Generator) paintBackground(img *tensor.Tensor) {
	h, w := img.Dim(1), img.Dim(2)
	base := [3]float64{0.25 + 0.3*g.rng.Float64(), 0.25 + 0.3*g.rng.Float64(), 0.25 + 0.3*g.rng.Float64()}
	// Three random plane waves per channel give gentle texture.
	type wave struct{ fx, fy, phase, amp float64 }
	waves := make([][3]wave, 3)
	for c := 0; c < 3; c++ {
		for k := 0; k < 3; k++ {
			waves[c][k] = wave{
				fx:    (g.rng.Float64() - 0.5) * 8 * math.Pi,
				fy:    (g.rng.Float64() - 0.5) * 8 * math.Pi,
				phase: g.rng.Float64() * 2 * math.Pi,
				amp:   0.03 + 0.05*g.rng.Float64(),
			}
		}
	}
	for c := 0; c < 3; c++ {
		for y := 0; y < h; y++ {
			fy := float64(y) / float64(h)
			for x := 0; x < w; x++ {
				fx := float64(x) / float64(w)
				v := base[c]
				for _, wv := range waves[c] {
					v += wv.amp * math.Sin(wv.fx*fx+wv.fy*fy+wv.phase)
				}
				img.Set(clamp01f(v), c, y, x)
			}
		}
	}
}

func (g *Generator) addNoise(img *tensor.Tensor) {
	if g.cfg.NoiseStd <= 0 {
		return
	}
	for i := range img.Data {
		img.Data[i] = clamp01f(float64(img.Data[i]) + g.rng.NormFloat64()*g.cfg.NoiseStd)
	}
}

func clamp01f(v float64) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return float32(v)
}
