package skynet_test

// Validates the committed tracking baseline: BENCH_track.json must carry
// one record per cross-correlation backend, the gemm route's AO must equal
// the naive oracle's exactly (the bitwise-identity contract), and the int8
// route's AO must sit within the accepted parity band. `make bench-track`
// regenerates the file.

import (
	"encoding/json"
	"os"
	"testing"
)

func TestBenchTrackBaseline(t *testing.T) {
	raw, err := os.ReadFile("BENCH_track.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var base struct {
		TrainSteps int `json:"train_steps"`
		Records    []struct {
			Backend string  `json:"backend"`
			AO      float64 `json:"ao"`
			FPS     float64 `json:"fps"`
			Frames  int     `json:"frames"`
		} `json:"records"`
		AODeltaInt8 float64 `json:"ao_delta_int8"`
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parsing BENCH_track.json: %v", err)
	}
	ao := map[string]float64{}
	for _, r := range base.Records {
		if r.FPS <= 0 || r.Frames <= 0 {
			t.Fatalf("backend %q: fps %v over %d frames — not a real measurement", r.Backend, r.FPS, r.Frames)
		}
		ao[r.Backend] = r.AO
	}
	for _, b := range []string{"gemm", "naive", "int8"} {
		if _, ok := ao[b]; !ok {
			t.Fatalf("baseline missing backend %q", b)
		}
	}
	if ao["gemm"] != ao["naive"] {
		t.Fatalf("gemm AO %v != naive AO %v: the bitwise-identity contract is broken", ao["gemm"], ao["naive"])
	}
	if base.AODeltaInt8 > 0.02 {
		t.Fatalf("int8 AO delta %v exceeds the 0.02 parity band", base.AODeltaInt8)
	}
}
