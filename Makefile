GO ?= go

.PHONY: all build vet test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the packages with parallel kernels under the race detector;
# the conv/GEMM tests force multi-worker execution even on one CPU.
race:
	$(GO) test -race ./internal/nn/... ./internal/tensor/...

bench:
	$(GO) test -run xxx -bench 'BenchmarkMatMul|BenchmarkConvForwardSteadyState|BenchmarkTable2Backbones' -benchtime 10x .

# check is the tier-1 gate: everything must pass before a commit.
check: vet build test race
