GO ?= go

.PHONY: all build vet test race bench check ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the concurrency-bearing packages under the race detector: the
# parallel GEMM/conv kernels and the streaming pipeline executor (plus its
# detect-stage adapters). The tests force multi-worker execution even on
# one CPU.
race:
	$(GO) test -race ./internal/nn/... ./internal/tensor/... ./internal/pipeline/... ./internal/detect/...

bench:
	$(GO) test -run xxx -bench 'BenchmarkMatMul|BenchmarkConvForwardSteadyState|BenchmarkTable2Backbones' -benchtime 10x .

# ci is the single verification entry point: everything must pass before a
# commit lands.
ci: vet test race build

# check is kept as an alias for ci (the historical name).
check: ci
