GO ?= go

# Per-package coverage floors (percent) enforced by `make cover` on the
# serving-critical packages, as pkg:floor pairs. The serve package carries
# the production HTTP surface (pool, router, swap, cache, scenarios) and is
# held to a higher floor than the rest.
COVER_FLOOR ?= 60
COVER_PKGS  ?= ./internal/serve:70 ./internal/analysis:75 ./internal/pso:70 ./internal/pipeline:$(COVER_FLOOR) ./internal/detect:$(COVER_FLOOR) ./internal/quant:$(COVER_FLOOR) ./internal/track:$(COVER_FLOOR)

.PHONY: all build binaries vet lint test short race purego arm64 bench bench-quant bench-track bench-serve bench-search bench-search-short bench-json cover check ci

all: ci

build:
	$(GO) build ./...

# binaries compiles every command and example entry point so a refactor
# cannot silently break a main package that `go build ./...` would still
# cover but a bad flag default or unused import would not surface until run.
binaries:
	@for d in cmd/* examples/*; do \
		echo "build $$d"; \
		$(GO) build -o /dev/null ./$$d || exit 1; \
	done

vet:
	$(GO) vet ./...

# lint runs the repo's own static-analysis pass (cmd/skynet-lint): the
# determinism, float-hygiene, error-discipline checkers plus the
# interprocedural hotcall/lockheld/ctxflow set over every package. Zero
# unwaived findings is a CI gate. The wall time is printed so a call-graph
# performance regression shows up in `make ci` output, not just in lost
# inner-loop seconds.
lint:
	@start=$$(date +%s); \
	$(GO) run ./cmd/skynet-lint ./... ; status=$$?; \
	end=$$(date +%s); \
	echo "lint wall time: $$((end-start))s"; \
	exit $$status

# -shuffle=on randomizes test (and subtest-sibling) execution order each
# run, so inter-test state dependencies surface in CI instead of in prod.
test:
	$(GO) test -shuffle=on ./...

# short is the fast inner-loop gate: every package, training budgets
# shrunk, the whole suite in well under a minute.
short:
	$(GO) test -short ./...

# race runs the concurrency-bearing packages under the race detector: the
# parallel GEMM/conv kernels, the streaming pipeline executor (plus its
# detect-stage adapters), the batching HTTP server, the stateful tracking
# service with its session table, the analysis framework (whose lazy
# Module state is shared across checker passes), and the PSO search (its
# bounded evaluation worker pool, cached engine evaluator, and job
# service). The tests force multi-worker execution even on one CPU.
race:
	$(GO) test -race ./internal/nn/... ./internal/tensor/... ./internal/pipeline/... ./internal/detect/... ./internal/serve/... ./internal/track/... ./internal/analysis/... ./internal/pso/...

# purego runs the kernel-bearing packages with the assembly micro-kernels
# compiled out, so the portable fallback (and its dispatch seam) cannot
# rot. The same tests run again with SKYNET_KERNEL=purego on a normal
# build to cover the runtime-selection path.
purego:
	$(GO) test -tags purego ./internal/tensor ./internal/cpufeat
	SKYNET_KERNEL=purego $(GO) test ./internal/tensor ./internal/cpufeat

# arm64 cross-compiles the whole tree for the other deployment
# architecture: the build tags on the amd64 assembly must keep every
# package buildable without it.
arm64:
	GOARCH=arm64 $(GO) build ./...

bench:
	@$(GO) run ./cmd/skynet-bench -which
	$(GO) test -run xxx -bench 'BenchmarkMatMul|BenchmarkConvForwardSteadyState|BenchmarkTable2Backbones' -benchtime 10x .

# bench-quant compares the int8 GEMM kernels against float32 at SkyNet
# layer shapes; both report GOPS and operand bytes/op (the int8 path moves
# 4x fewer bytes), and -benchmem surfaces the zero-allocation contract.
bench-quant:
	@$(GO) run ./cmd/skynet-bench -which
	$(GO) test -run xxx -bench 'BenchmarkInt8GEMMShapes|BenchmarkFloatGEMMShapes' -benchmem ./internal/tensor

# bench-track regenerates BENCH_track.json, the committed tracking
# baseline: one seeded tracker evaluated under the gemm, naive, and int8
# cross-correlation backends, recording frames/sec and AO/SR per backend
# plus the int8 path's AO parity delta.
bench-track:
	$(GO) run ./cmd/skynet-bench -track-out BENCH_track.json

# bench-serve regenerates BENCH_serve.json, the committed fleet-serving
# baseline: a replica pool under scenario-driven load (diurnal ramp, burst
# with slow-loris and live tracking, hot-swap to int8 under load) at 6400
# peak closed-loop clients, asserting byte-identity between 1-replica and
# N-replica configs and a p99 SLO on the server-side latency histogram.
bench-serve:
	$(GO) run ./cmd/skynet-bench -serve-out BENCH_serve.json

# bench-search regenerates BENCH_search.json, the committed codesign-search
# baseline: a fixed-seed measured-fitness PSO job run through the search
# service (engine factors calibrated on the real float32/int8 engines,
# then pinned), with executed proofs that the trajectory is bitwise
# identical across worker counts and across kill+resume, plus an
# analytic-vs-measured latency comparison for the winning genomes.
bench-search:
	$(GO) run ./cmd/skynet-bench -search-out BENCH_search.json

# bench-search-short re-proves the same determinism contracts on a smaller
# trajectory, writing to a scratch file: the CI gate (skynet-bench exits
# non-zero if either proof fails) without touching the committed baseline.
bench-search-short:
	$(GO) run ./cmd/skynet-bench -search-out $(if $(TMPDIR),$(TMPDIR),/tmp)/BENCH_search_short.json -search-short

# bench-json regenerates the committed machine-readable baselines:
# BENCH_gemm.json (GFLOPS trajectory — every kernel at SkyNet GEMM shapes,
# serial, with allocation counts) and BENCH_track.json (tracking backends).
# Commit the diff when kernels change so the trajectory stays honest.
bench-json: bench-track
	$(GO) run ./cmd/skynet-bench -out BENCH_gemm.json

# cover measures statement coverage on the serving-critical packages and
# fails if any of them drops below its per-package floor.
cover:
	@fail=0; \
	for entry in $(COVER_PKGS); do \
		pkg=$${entry%:*}; floor=$${entry##*:}; \
		out=$$($(GO) test -short -cover $$pkg | tail -1); \
		echo "$$out (floor $$floor%)"; \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "$$pkg: no coverage reported"; fail=1; continue; fi; \
		ok=$$(awk "BEGIN{print ($$pct >= $$floor) ? 1 : 0}"); \
		if [ "$$ok" != "1" ]; then echo "$$pkg: coverage $$pct% below floor $$floor%"; fail=1; fi; \
	done; \
	exit $$fail

# ci is the single verification entry point: everything must pass before a
# commit lands. bench-search-short re-executes the search determinism
# proofs; cover enforces the per-package floors above.
ci: vet lint test race purego arm64 build binaries bench-search-short cover

# check is kept as an alias for ci (the historical name).
check: ci
