package skynet_test

// Validates the committed codesign-search baseline: BENCH_search.json must
// record a completed fixed-seed measured-fitness search whose determinism
// proofs (bitwise-identical trajectory across worker counts and across
// kill+resume) actually executed and held, whose winner was priced through
// all four platforms (analytic FPGA/GPU plus both measured CPU engines),
// and whose analytic-vs-measured comparison carries both views of every
// genome. `make bench-search` regenerates the file.

import (
	"encoding/json"
	"math"
	"os"
	"testing"
)

func TestBenchSearchBaseline(t *testing.T) {
	raw, err := os.ReadFile("BENCH_search.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var base struct {
		JobID      string `json:"job_id"`
		Iterations int    `json:"iterations"`
		Factors    struct {
			Float32 float64 `json:"float32_ns_per_mac"`
			Int8    float64 `json:"int8_ns_per_mac"`
		} `json:"factors"`
		History []float64 `json:"history"`
		Best    struct {
			Net       string             `json:"net"`
			Fit       float64            `json:"fit"`
			FloatIoU  float64            `json:"float_iou"`
			Int8IoU   float64            `json:"int8_iou"`
			LatencyMS map[string]float64 `json:"latency_ms"`
		} `json:"best"`
		OperatingPointIoU float64 `json:"operating_point_iou"`
		WideWorkers       int     `json:"wide_workers"`
		ParallelIdentical bool    `json:"parallel_identical"`
		ResumeKillIter    int     `json:"resume_kill_iter"`
		ResumeIdentical   bool    `json:"resume_identical"`
		CacheHits         int64   `json:"cache_hits"`
		CacheMisses       int64   `json:"cache_misses"`
		Comparison        []struct {
			Net        string             `json:"net"`
			AnalyticMS map[string]float64 `json:"analytic_ms"`
			MeasuredMS map[string]float64 `json:"measured_ms"`
		} `json:"comparison"`
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parsing BENCH_search.json: %v", err)
	}

	if base.JobID == "" {
		t.Fatal("baseline carries no job ID — the search did not run through the service")
	}
	if len(base.History) != base.Iterations || base.Iterations == 0 {
		t.Fatalf("history has %d entries for %d iterations", len(base.History), base.Iterations)
	}
	for i := 1; i < len(base.History); i++ {
		if base.History[i] < base.History[i-1] {
			t.Fatalf("best-fitness history must be monotone non-decreasing: %v", base.History)
		}
	}
	if base.History[len(base.History)-1] != base.Best.Fit {
		t.Fatalf("final history entry %v != best fitness %v", base.History[len(base.History)-1], base.Best.Fit)
	}

	if base.Factors.Float32 <= 0 || base.Factors.Int8 <= 0 {
		t.Fatalf("engine factors %+v — calibration did not run on the real engines", base.Factors)
	}

	// The winner must have been priced on every platform: the analytic FPGA
	// and GPU models plus both engine-measured CPU paths.
	for _, k := range []string{"fpga", "gpu", "cpu-f32", "cpu-i8"} {
		if base.Best.LatencyMS[k] <= 0 {
			t.Fatalf("best latency[%s] = %v, want > 0", k, base.Best.LatencyMS[k])
		}
	}
	if base.Best.FloatIoU <= 0 || base.Best.Int8IoU <= 0 {
		t.Fatalf("best IoUs float %v int8 %v — both engines must have evaluated the winner",
			base.Best.FloatIoU, base.Best.Int8IoU)
	}
	if base.OperatingPointIoU != base.Best.Int8IoU {
		t.Fatalf("operating point IoU %v must be the winner's measured int8 accuracy %v",
			base.OperatingPointIoU, base.Best.Int8IoU)
	}

	// The determinism proofs must have executed (non-trivial parameters)
	// and held.
	if base.WideWorkers < 2 {
		t.Fatalf("parallelism proof ran with %d workers — not a proof", base.WideWorkers)
	}
	if !base.ParallelIdentical {
		t.Fatal("trajectory differed across worker counts: the fixed-order reduction contract is broken")
	}
	if base.ResumeKillIter < 1 || base.ResumeKillIter >= base.Iterations {
		t.Fatalf("resume proof killed at iteration %d of %d — not a mid-search kill", base.ResumeKillIter, base.Iterations)
	}
	if !base.ResumeIdentical {
		t.Fatal("resumed trajectory differed from the uninterrupted run: the checkpoint contract is broken")
	}

	if base.CacheMisses == 0 {
		t.Fatal("a finished search must have evaluated something")
	}
	if base.CacheHits == 0 {
		t.Fatal("a multi-iteration search re-visits genomes; zero cache hits means the arch-hash cache is dead")
	}

	if len(base.Comparison) == 0 {
		t.Fatal("baseline carries no analytic-vs-measured comparison")
	}
	for _, c := range base.Comparison {
		// Both views model the same FPGA and GPU, so those columns agree;
		// only the measured view prices the CPU engines.
		for _, k := range []string{"fpga", "gpu"} {
			if math.Abs(c.AnalyticMS[k]-c.MeasuredMS[k]) > 1e-9 {
				t.Fatalf("%s: %s latency differs between views: %v vs %v", c.Net, k, c.AnalyticMS[k], c.MeasuredMS[k])
			}
		}
		for _, k := range []string{"cpu-f32", "cpu-i8"} {
			if c.MeasuredMS[k] <= 0 {
				t.Fatalf("%s: measured view missing %s", c.Net, k)
			}
			if _, ok := c.AnalyticMS[k]; ok {
				t.Fatalf("%s: analytic view claims a measured CPU latency", c.Net)
			}
		}
	}
}
